//! Lock-discipline: the declared hierarchy (`[locks] order` in
//! `analysis.toml`, normative in `docs/ANALYSIS.md`) is enforced
//! against *lexical guard scopes*.
//!
//! An acquisition site is any match of a lock class's patterns in the
//! raw condensed view (string contents kept — the `.expect("…
//! poisoned")` messages are the most stable anchors the lock sites
//! have). A guard bound with `let` lives until its enclosing brace
//! block closes or an explicit `drop(<name>)`; an unbound (temporary)
//! guard lives to the end of its statement. This over-approximates
//! real guard lifetimes on early returns, which is the safe direction
//! for a deadlock lint.
//!
//! Two rules:
//!
//! 1. while a guard of rank *r* is live, acquiring a lock of rank
//!    ≤ *r* (outward or same-class) is a violation;
//! 2. while any guard is live, a blocking call (`[locks] blocking`
//!    patterns: fsync, journal appends/compaction, canonicalization
//!    walks) is a violation unless pragma-allowed with a reason.

use crate::config::Config;
use crate::lexer::{find_all, word_bounded, Lexed};
use crate::report::{Finding, CHECK_LOCKS};

/// Brace depth before each byte of `text` (one extra trailing entry).
fn depths(text: &str) -> Vec<u32> {
    let mut out = Vec::with_capacity(text.len() + 1);
    let mut d: u32 = 0;
    for b in text.bytes() {
        match b {
            b'{' => {
                out.push(d);
                d += 1;
            }
            b'}' => {
                d = d.saturating_sub(1);
                out.push(d);
            }
            _ => out.push(d),
        }
    }
    out.push(d);
    out
}

#[derive(Debug)]
struct Acquisition {
    rank: usize,
    pos: usize,
    line: u32,
    scope_end: usize,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Start of the statement segment containing `pos`.
fn segment_start(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos]
        .iter()
        .rposition(|&b| b == b';' || b == b'{' || b == b'}')
        .map(|i| i + 1)
        .unwrap_or(0)
}

/// The guard variable bound by the statement, if it is a `let`.
fn binding_name(segment: &str) -> Option<&str> {
    let rest = segment.trim_start().strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let end = rest
        .as_bytes()
        .iter()
        .position(|&b| !is_ident_byte(b))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// Where the guard acquired at `pos` stops being (lexically) live.
fn scope_end(text: &str, depth: &[u32], pos: usize) -> usize {
    let seg_start = segment_start(text, pos);
    let segment = &text[seg_start..pos];
    let d = depth[pos];
    // The position where the enclosing block closes.
    let block_end = (pos..text.len())
        .find(|&i| depth[i] < d)
        .unwrap_or(text.len());
    match binding_name(segment) {
        Some(name) => {
            let drop_pat = format!("drop({name})");
            for p in find_all(&text[pos..block_end], &drop_pat) {
                if word_bounded(text, pos + p + 5, name.len()) {
                    return pos + p;
                }
            }
            block_end
        }
        None => {
            // Temporary: dies at the end of its statement.
            let stmt_end = (pos..block_end)
                .find(|&i| text.as_bytes()[i] == b';' && depth[i] == d)
                .unwrap_or(block_end);
            stmt_end.min(block_end)
        }
    }
}

/// True when the match at `pos` sits in a declaration (`fn lock_x(`),
/// not a call site.
fn is_definition(text: &str, pos: usize) -> bool {
    let segment = &text[segment_start(text, pos)..pos];
    find_all(segment, "fn")
        .iter()
        .any(|&p| word_bounded(segment, p, 2))
}

/// Runs the checker over one file's lex.
pub fn check(file: &str, lexed: &Lexed, cfg: &Config) -> Vec<Finding> {
    let text = &lexed.raw.text;
    let depth = depths(text);
    let mut acqs: Vec<Acquisition> = Vec::new();
    for (rank, class) in cfg.lock_order.iter().enumerate() {
        for pat in &class.patterns {
            for pos in find_all(text, pat) {
                if is_definition(text, pos) {
                    continue;
                }
                acqs.push(Acquisition {
                    rank,
                    pos,
                    line: lexed.raw.line_of(pos),
                    scope_end: scope_end(text, &depth, pos),
                });
            }
        }
    }
    acqs.sort_by_key(|a| a.pos);

    let mut findings = Vec::new();
    for (i, outer) in acqs.iter().enumerate() {
        for inner in &acqs[i + 1..] {
            if inner.pos >= outer.scope_end {
                break;
            }
            if inner.rank <= outer.rank {
                let outer_name = &cfg.lock_order[outer.rank].name;
                let inner_name = &cfg.lock_order[inner.rank].name;
                let what = if inner.rank == outer.rank {
                    format!("nested acquisition of lock class `{inner_name}`")
                } else {
                    format!(
                        "acquires `{inner_name}` (rank {}) while holding `{outer_name}` \
                         (rank {})",
                        inner.rank, outer.rank
                    )
                };
                findings.push(Finding {
                    check: CHECK_LOCKS.to_string(),
                    file: file.to_string(),
                    line: inner.line,
                    message: format!(
                        "{what}; declared order is outermost-first `{}` \
                         (guard taken at line {})",
                        order_names(cfg),
                        outer.line
                    ),
                });
            }
        }
    }

    for pat in &cfg.blocking {
        for pos in find_all(text, pat) {
            if let Some(holder) = acqs
                .iter()
                .filter(|a| a.pos < pos && pos < a.scope_end)
                .max_by_key(|a| a.pos)
            {
                findings.push(Finding {
                    check: CHECK_LOCKS.to_string(),
                    file: file.to_string(),
                    line: lexed.raw.line_of(pos),
                    message: format!(
                        "blocking call `{pat}` while holding the `{}` guard taken \
                         at line {}",
                        cfg.lock_order[holder.rank].name, holder.line
                    ),
                });
            }
        }
    }
    findings
}

fn order_names(cfg: &Config) -> String {
    cfg.lock_order
        .iter()
        .map(|c| c.name.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_cfg() -> Config {
        Config::parse(concat!(
            "[locks]\n",
            "files = [\"x.rs\"]\n",
            "order = [\"outer\", \"inner\"]\n",
            "blocking = [\".sync_all(\"]\n",
            "[locks.patterns]\n",
            "outer = [\"outer.lock(\"]\n",
            "inner = [\"inner.lock(\"]\n",
        ))
        .unwrap()
    }

    #[test]
    fn out_of_order_and_same_class_nesting_fire() {
        let lexed = lex(concat!(
            "fn bad(&self) {\n",
            "    let g = self.inner.lock().unwrap();\n",
            "    let h = self.outer.lock().unwrap();\n", // inward->outward: bad
            "}\n",
            "fn worse(&self) {\n",
            "    let a = self.outer.lock().unwrap();\n",
            "    let b = self.outer.lock().unwrap();\n", // same class: bad
            "}\n",
            "fn good(&self) {\n",
            "    let g = self.outer.lock().unwrap();\n",
            "    let h = self.inner.lock().unwrap();\n", // outermost-first: ok
            "}\n",
        ));
        let findings = check("x.rs", &lexed, &test_cfg());
        assert_eq!(findings.len(), 2, "{findings:#?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("while holding"));
        assert_eq!(findings[1].line, 7);
        assert!(findings[1].message.contains("nested acquisition"));
    }

    #[test]
    fn drop_and_statement_scope_end_guards() {
        let lexed = lex(concat!(
            "fn ok(&self) {\n",
            "    let g = self.inner.lock().unwrap();\n",
            "    drop(g);\n",
            "    let h = self.outer.lock().unwrap();\n", // g dropped: ok
            "    self.inner.lock().unwrap().len();\n",   // temporary
            "    let i = self.inner.lock().unwrap();\n", // after stmt end: ok
            "}\n",
        ));
        assert_eq!(check("x.rs", &lexed, &test_cfg()), vec![]);
    }

    #[test]
    fn blocking_calls_under_guards_fire() {
        let lexed = lex(concat!(
            "fn flushy(&self) {\n",
            "    let g = self.outer.lock().unwrap();\n",
            "    self.file.sync_all().unwrap();\n",
            "}\n",
            "fn fine(&self) {\n",
            "    self.file.sync_all().unwrap();\n",
            "}\n",
        ));
        let findings = check("x.rs", &lexed, &test_cfg());
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains(".sync_all("));
    }

    #[test]
    fn declarations_are_not_acquisitions() {
        let lexed = lex(concat!(
            "impl S {\n",
            "    fn outer.lock(&self) {}\n", // contrived, but: decl
            "    pub fn helper(&self) -> G { self.inner.lock().unwrap() }\n",
            "    fn later(&self) { let g = self.outer.lock().unwrap(); }\n",
            "}\n",
        ));
        assert_eq!(check("x.rs", &lexed, &test_cfg()), vec![]);
    }
}
