//! The `// analysis:` pragma grammar — the one escape hatch.
//!
//! Two directives exist (`docs/ANALYSIS.md` is the normative grammar):
//!
//! * `// analysis: allow(<check>, "<reason>")` — suppresses findings
//!   of `<check>` on this line and the next source line. The reason is
//!   mandatory and non-empty: an allowance without a recorded *why*
//!   is exactly the kind of silent drift this tool exists to stop.
//! * `// analysis: no_alloc` — marks the next `fn` as a zero-
//!   allocation hot path for the allocation checker.
//!
//! Anything else after `analysis:` is a **fatal** parse error — the
//! binary exits non-zero even outside `--deny` mode, because a typo'd
//! pragma would otherwise read as a clean run while checking nothing.

use crate::report::{Finding, CHECK_PRAGMA};

/// A parsed `allow` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Source line the pragma sits on (it covers this line and the
    /// next).
    pub line: u32,
    /// The check name being allowed (one of [`KNOWN_CHECKS`]).
    pub check: String,
    /// The mandatory quoted justification.
    pub reason: String,
}

/// A parsed `no_alloc` mark (applies to the next `fn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoAllocMark {
    /// Source line the mark sits on.
    pub line: u32,
}

/// Everything pragma-shaped found in one file's comments.
#[derive(Debug, Default)]
pub struct Pragmas {
    /// Well-formed `allow(check, "reason")` pragmas.
    pub allows: Vec<Allow>,
    /// `no_alloc` function marks.
    pub no_alloc: Vec<NoAllocMark>,
    /// Malformed pragmas, reported as fatal `pragma` findings.
    pub errors: Vec<Finding>,
}

/// The checks `allow(...)` may name.
pub const KNOWN_CHECKS: [&str; 4] = [
    "lock-discipline",
    "no-alloc",
    "protocol-drift",
    "unsafe-audit",
];

/// Scans `comments` (from [`crate::lexer::Lexed`]) for pragmas.
pub fn collect(file: &str, comments: &[(u32, String)]) -> Pragmas {
    let mut out = Pragmas::default();
    for (line, text) in comments {
        let Some(rest) = text.trim_start().strip_prefix("analysis:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "no_alloc" {
            out.no_alloc.push(NoAllocMark { line: *line });
            continue;
        }
        match parse_allow(rest) {
            Ok((check, reason)) => out.allows.push(Allow {
                line: *line,
                check,
                reason,
            }),
            Err(why) => out.errors.push(Finding {
                check: CHECK_PRAGMA.to_string(),
                file: file.to_string(),
                line: *line,
                message: format!("unparseable pragma `analysis: {rest}`: {why}"),
            }),
        }
    }
    out
}

fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let body = rest
        .strip_prefix("allow(")
        .ok_or("expected `allow(<check>, \"<reason>\")` or `no_alloc`")?
        .strip_suffix(')')
        .ok_or("missing closing `)`")?;
    let (check, reason) = body
        .split_once(',')
        .ok_or("missing `, \"<reason>\"` — allowances must record why")?;
    let check = check.trim();
    if !KNOWN_CHECKS.contains(&check) {
        return Err(format!(
            "unknown check {check:?} (one of: {})",
            KNOWN_CHECKS.join(", ")
        ));
    }
    let reason = reason.trim();
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or("reason must be a quoted string")?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((check.to_string(), reason.to_string()))
}

impl Pragmas {
    /// The allow covering `(check, line)`, if any: a pragma suppresses
    /// its own line and the line below it.
    pub fn allowance(&self, check: &str, line: u32) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.check == check && (a.line == line || a.line + 1 == line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_one(text: &str) -> Pragmas {
        collect("f.rs", &[(7, text.to_string())])
    }

    #[test]
    fn well_formed_pragmas_parse() {
        let p = collect_one(" analysis: allow(no-alloc, \"warmed caller buffer\")");
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].check, "no-alloc");
        assert_eq!(p.allows[0].reason, "warmed caller buffer");
        assert!(p.errors.is_empty());

        let p = collect_one(" analysis: no_alloc");
        assert_eq!(p.no_alloc, [NoAllocMark { line: 7 }]);
    }

    #[test]
    fn malformed_pragmas_are_fatal_findings() {
        for bad in [
            " analysis: allow(no-alloc)",         // no reason
            " analysis: allow(no-alloc, \"\")",   // empty reason
            " analysis: allow(bogus, \"x\")",     // unknown check
            " analysis: allow(no-alloc, reason)", // unquoted reason
            " analysis: allwo(no-alloc, \"x\")",  // typo'd directive
            " analysis: no_allocs",               // typo'd mark
        ] {
            let p = collect_one(bad);
            assert_eq!(p.errors.len(), 1, "{bad:?} should be a parse error");
            assert!(p.allows.is_empty() && p.no_alloc.is_empty(), "{bad:?}");
            assert_eq!(p.errors[0].line, 7);
        }
        // Ordinary comments mentioning the word are not pragmas.
        let p = collect_one(" the analysis: see docs");
        assert!(p.errors.is_empty() && p.allows.is_empty());
    }

    #[test]
    fn allowance_covers_own_and_next_line() {
        let p = collect_one(" analysis: allow(unsafe-audit, \"harness\")");
        assert!(p.allowance("unsafe-audit", 7).is_some());
        assert!(p.allowance("unsafe-audit", 8).is_some());
        assert!(p.allowance("unsafe-audit", 9).is_none());
        assert!(p.allowance("no-alloc", 8).is_none());
    }
}
