//! The fixture corpus: every checker is pinned against a known-bad
//! tree with EXACT finding counts, pragma suppression is proven, the
//! protocol-drift checker is proven to catch a mutated opcode number
//! in the real spec, malformed pragmas are proven fatal at the binary
//! level, and — the seed guarantee — the real workspace analyzes
//! clean.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::Command;

use facepoint_analysis::config::Config;
use facepoint_analysis::report::{CHECK_ALLOC, CHECK_LOCKS, CHECK_PRAGMA, CHECK_UNSAFE};
use facepoint_analysis::{checks, run, run_with_default_config};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn known_bad_tree_yields_exact_finding_counts() {
    let root = fixture("bad");
    let cfg = Config::load(&root.join("analysis.toml")).unwrap();
    let report = run(&root, &cfg).unwrap();
    let counts = report.counts();
    assert_eq!(counts[CHECK_LOCKS], 2, "{:#?}", report.findings);
    assert_eq!(counts[CHECK_ALLOC], 2, "{:#?}", report.findings);
    assert_eq!(counts[CHECK_UNSAFE], 4, "{:#?}", report.findings);
    assert_eq!(counts[CHECK_PRAGMA], 0, "{:#?}", report.findings);
    assert_eq!(report.findings.len(), 8, "{:#?}", report.findings);

    // The two lock findings are the inverted acquisition and the fsync.
    let locks: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.check == CHECK_LOCKS)
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        locks.iter().any(|m| m.contains("while holding")),
        "{locks:?}"
    );
    assert!(locks.iter().any(|m| m.contains(".sync_all(")), "{locks:?}");

    // The forbid-promotion rule fired on the unsafe-free `deny` crate.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.file == "crates/softy/src/lib.rs" && f.message.contains("promote")),
        "{:#?}",
        report.findings
    );
}

#[test]
fn pragma_suppression_moves_findings_to_allowed_with_reason() {
    let root = fixture("bad");
    let cfg = Config::load(&root.join("analysis.toml")).unwrap();
    let report = run(&root, &cfg).unwrap();
    assert_eq!(report.allowed.len(), 1, "{:#?}", report.allowed);
    let a = &report.allowed[0];
    assert_eq!(a.finding.file, "crates/demo/src/suppressed.rs");
    assert_eq!(a.finding.check, CHECK_ALLOC);
    assert_eq!(a.reason, "fixture: suppressed on purpose");
    // Suppressed means: not in findings.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file == "crates/demo/src/suppressed.rs"),
        "{:#?}",
        report.findings
    );
}

#[test]
fn the_workspace_itself_analyzes_clean() {
    let report = run_with_default_config(&workspace_root()).unwrap();
    assert!(
        report.is_clean(),
        "the seed must stay clean; findings:\n{:#?}",
        report.findings
    );
    // The intentional journal-under-shard-guard sites (and the warmed
    // hot-path buffers) are allowed with recorded reasons, not absent.
    assert!(
        !report.allowed.is_empty(),
        "the store's by-design allowances should be on record"
    );
    assert!(report.files_scanned > 100);
}

/// The ISSUE's acceptance criterion for protocol drift: mutating an
/// opcode number in (a copy of) the real PROTOCOL.md must fail the
/// checker.
#[test]
fn mutating_a_real_opcode_number_is_caught() {
    let root = workspace_root();
    let doc = std::fs::read_to_string(root.join("docs/PROTOCOL.md")).unwrap();
    let proto = std::fs::read_to_string(root.join("crates/serve/src/proto.rs")).unwrap();
    let server = std::fs::read_to_string(root.join("crates/serve/src/server.rs")).unwrap();
    let paths = (
        "docs/PROTOCOL.md",
        "crates/serve/src/proto.rs",
        "crates/serve/src/server.rs",
    );

    // Unmutated: clean.
    let (spec, findings) = checks::protocol::check_texts(&doc, &proto, &server, paths);
    assert_eq!(findings, vec![], "{findings:#?}");
    assert_eq!(spec.opcode_section("CANON"), Some(8));

    // Renumber §4.8 CANON to §4.9: contiguity breaks.
    let renumbered = doc.replace("### 4.8 `CANON", "### 4.9 `CANON");
    assert_ne!(renumbered, doc, "the spec moved; update this fixture");
    let (_, findings) = checks::protocol::check_texts(&renumbered, &proto, &server, paths);
    assert!(
        findings.iter().any(|f| f.message.contains("contiguous")),
        "{findings:#?}"
    );

    // Rename an opcode in the doc only: both implementation anchors
    // and the doc side fire.
    let renamed = doc.replace("### 4.7 `TOP <k>`", "### 4.7 `POP <k>`");
    assert_ne!(renamed, doc);
    let (_, findings) = checks::protocol::check_texts(&renamed, &proto, &server, paths);
    assert!(
        findings.iter().any(|f| f.message.contains("`TOP`")),
        "{findings:#?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("`POP`")),
        "{findings:#?}"
    );

    // Retoken a status row: the §5 cross-check fires.
    let retok = doc.replace("| 3 | `EUSAGE` |", "| 3 | `EMISUSE` |");
    assert_ne!(retok, doc);
    let (_, findings) = checks::protocol::check_texts(&retok, &proto, &server, paths);
    assert!(
        findings.iter().any(|f| f.message.contains("EMISUSE")),
        "{findings:#?}"
    );
}

fn run_binary(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_facepoint-analysis"))
        .args(args)
        .output()
        .expect("spawn facepoint-analysis")
}

#[test]
fn binary_exit_codes_are_pinned() {
    let bad = fixture("bad");
    let bad = bad.to_str().unwrap();
    // Findings without --deny: report mode, exit 0.
    assert_eq!(run_binary(&["--root", bad]).status.code(), Some(0));
    // Findings under --deny: exit 1.
    assert_eq!(
        run_binary(&["--root", bad, "--deny"]).status.code(),
        Some(1)
    );

    // The clean workspace under --deny: exit 0.
    let ws = workspace_root();
    let ws = ws.to_str().unwrap();
    let out = run_binary(&["--root", ws, "--deny"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn malformed_pragmas_are_fatal_even_without_deny() {
    let root = fixture("pragma");
    let root = root.to_str().unwrap();
    let out = run_binary(&["--root", root]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unparseable pragma"), "{stderr}");
}

#[test]
fn report_json_is_written_and_shaped() {
    let dir = std::env::temp_dir().join(format!("facepoint-analysis-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    let bad = fixture("bad");
    let out = run_binary(&[
        "--root",
        bad.to_str().unwrap(),
        "--report",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let json = std::fs::read_to_string(&path).unwrap();
    for needle in [
        "\"tool\": \"facepoint-analysis\"",
        "\"version\": 1",
        "\"files_scanned\": 5",
        "\"lock-discipline\": 2",
        "\"no-alloc\": 2",
        "\"unsafe-audit\": 4",
        "\"reason\": \"fixture: suppressed on purpose\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
