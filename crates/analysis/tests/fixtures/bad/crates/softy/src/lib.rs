// Forbid-promotion fixture: `deny` with no unsafe anywhere in the
// crate must be flagged for promotion to `forbid`.
#![deny(unsafe_code)]

pub fn fine() {}
