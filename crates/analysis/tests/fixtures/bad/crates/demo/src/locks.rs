// Lock-discipline fixture: one out-of-order nested acquisition and
// one blocking call under a live guard.

impl Demo {
    fn inverted(&self) {
        let g = self.inner.lock().unwrap();
        let h = self.outer.lock().unwrap(); // inward -> outward: finding
        drop(h);
        drop(g);
    }

    fn fsync_under_guard(&self) {
        let g = self.outer.lock().unwrap();
        self.file.sync_all().unwrap(); // blocking under guard: finding
        drop(g);
    }
}
