// Pragma-suppression fixture: the violation below is allowed with a
// recorded reason, so it lands in the report's `allowed` list and not
// in `findings`.

// analysis: no_alloc
pub fn hot() -> String {
    // analysis: allow(no-alloc, "fixture: suppressed on purpose")
    String::new()
}
