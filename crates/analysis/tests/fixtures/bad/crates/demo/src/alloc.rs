// No-alloc fixture: a marked hot path reaching two allocating
// constructs.

// analysis: no_alloc
pub fn hot(out: &mut Vec<u32>) -> String {
    out.push(1); // no with_capacity in scope: finding
    format!("len = {}", out.len()) // finding
}

pub fn cold() -> Vec<u32> {
    vec![1, 2, 3] // unmarked: not a finding
}
