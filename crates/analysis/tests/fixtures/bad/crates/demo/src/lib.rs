// A crate root with no unsafe lint attribute (one unsafe-audit
// finding) and an undocumented, un-allowlisted unsafe block (two
// more).

pub fn launder(x: &u64) -> u64 {
    unsafe { std::ptr::read(x) }
}
