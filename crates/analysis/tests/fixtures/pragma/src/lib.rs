#![forbid(unsafe_code)]
// A malformed pragma — missing the mandatory reason — must make the
// binary exit non-zero even without --deny.

// analysis: allow(no-alloc)
pub fn f() {}
