//! Random AND/INV logic — stand-in for the irregular control blocks of
//! the EPFL suite (`cavlc`, `i2c`, `mem_ctrl`, `router`, …).

use crate::aig::{Aig, Lit};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random DAG of `gates` AND nodes over `inputs` primary inputs, with
/// uniformly complemented edges. Fanins are drawn with a recency bias so
/// the graph grows deep *and* wide like real control logic rather than
/// collapsing into a single chain. Every node with no fanout becomes a
/// primary output.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `inputs == 0`.
pub fn random_logic(inputs: usize, gates: usize, seed: u64) -> Aig {
    assert!(inputs > 0, "random logic needs at least one input");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new(inputs);
    let mut pool: Vec<Lit> = (0..inputs).map(|i| aig.input(i)).collect();
    let mut has_fanout = vec![false; inputs + gates + 1];
    for _ in 0..gates {
        // Recency bias: half the draws come from the most recent quarter.
        let draw = |rng: &mut StdRng, pool: &[Lit]| -> Lit {
            let idx = if rng.random::<bool>() && pool.len() > 4 {
                rng.random_range(pool.len() - pool.len() / 4..pool.len())
            } else {
                rng.random_range(0..pool.len())
            };
            let lit = pool[idx];
            if rng.random::<bool>() {
                lit.complement()
            } else {
                lit
            }
        };
        let a = draw(&mut rng, &pool);
        let mut b = draw(&mut rng, &pool);
        // Avoid trivial gates (a ∧ a, a ∧ ¬a) which fold away.
        let mut guard = 0;
        while b.node() == a.node() && guard < 8 {
            b = draw(&mut rng, &pool);
            guard += 1;
        }
        let g = aig.and(a, b);
        if !aig.is_input(g.node()) && !aig.is_const(g.node()) {
            has_fanout[a.node() as usize] = true;
            has_fanout[b.node() as usize] = true;
            pool.push(g);
        }
    }
    // Expose all sinks.
    let mut added = false;
    for &lit in &pool {
        let n = lit.node() as usize;
        if n < has_fanout.len() && !has_fanout[n] && !aig.is_input(lit.node()) {
            aig.add_output(lit);
            added = true;
        }
    }
    if !added {
        let last = *pool.last().expect("pool is never empty");
        aig.add_output(last);
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = random_logic(8, 50, 42);
        let b = random_logic(8, 50, 42);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.outputs().len(), b.outputs().len());
        // Same structure ⇒ same simulated behaviour.
        let pat: Vec<u64> = (0..8)
            .map(|i| 0x123456789ABCDEF0u64.rotate_left(i * 7))
            .collect();
        assert_eq!(a.simulate_words(&pat), b.simulate_words(&pat));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_logic(8, 60, 1);
        let b = random_logic(8, 60, 2);
        // Structures almost surely differ in size or behaviour.
        let pat: Vec<u64> = (0..8)
            .map(|i| 0xDEADBEEFCAFEF00Du64.rotate_left(i * 5))
            .collect();
        let same = a.num_nodes() == b.num_nodes()
            && a.outputs().len() == b.outputs().len()
            && a.simulate_words(&pat) == b.simulate_words(&pat);
        assert!(!same, "two seeds produced identical circuits");
    }

    #[test]
    fn has_outputs_and_gates() {
        let aig = random_logic(10, 80, 7);
        assert!(!aig.outputs().is_empty());
        assert!(aig.num_ands() > 20, "strashing shrinks but not to nothing");
    }
}
