//! Control-logic generators (the EPFL "random/control" family).

use crate::aig::{Aig, Lit};
use crate::generators::arithmetic::full_adder;

/// A `sel_bits`-to-`2^sel_bits` one-hot decoder (EPFL `dec` analog).
pub fn decoder(sel_bits: usize) -> Aig {
    assert!(sel_bits >= 1, "decoder needs at least one select bit");
    let mut aig = Aig::new(sel_bits);
    let lines = 1usize << sel_bits;
    let mut outs = Vec::with_capacity(lines);
    for line in 0..lines {
        let mut acc = Lit::TRUE;
        for s in 0..sel_bits {
            let sel = aig.input(s);
            let lit = if (line >> s) & 1 == 1 {
                sel
            } else {
                sel.complement()
            };
            acc = aig.and(acc, lit);
        }
        outs.push(acc);
    }
    for o in outs {
        aig.add_output(o);
    }
    aig
}

/// A priority arbiter over `n` request lines (EPFL `arbiter`/`priority`
/// analog): grant `i` rises iff request `i` is the lowest-index active
/// request.
pub fn priority_arbiter(n: usize) -> Aig {
    assert!(n >= 1, "arbiter needs at least one request");
    let mut aig = Aig::new(n);
    let mut blocked = Lit::FALSE; // some lower-index request active
    let mut outs = Vec::with_capacity(n);
    for i in 0..n {
        let req = aig.input(i);
        outs.push(aig.and(req, blocked.complement()));
        blocked = aig.or(blocked, req);
    }
    for o in outs {
        aig.add_output(o);
    }
    aig
}

/// A majority voter over `n` (odd) inputs (EPFL `voter` analog): counts
/// the active inputs with a full-adder tree and compares against
/// `(n+1)/2`.
pub fn majority_voter(n: usize) -> Aig {
    assert!(n % 2 == 1, "voter needs an odd input count");
    let mut aig = Aig::new(n);
    // Carry-save population count: `bits[k]` holds weight-2^k wires.
    let mut bits: Vec<Vec<Lit>> = vec![(0..n).map(|i| aig.input(i)).collect()];
    let mut k = 0;
    loop {
        while bits[k].len() >= 2 {
            if bits[k].len() >= 3 {
                let a = bits[k].pop().expect("len >= 3");
                let b = bits[k].pop().expect("len >= 2");
                let c = bits[k].pop().expect("len >= 1");
                let (s, carry) = full_adder(&mut aig, a, b, c);
                bits[k].push(s);
                if bits.len() == k + 1 {
                    bits.push(Vec::new());
                }
                bits[k + 1].push(carry);
            } else {
                let a = bits[k].pop().expect("len == 2");
                let b = bits[k].pop().expect("len == 1");
                let s = aig.xor(a, b);
                let carry = aig.and(a, b);
                bits[k].push(s);
                if bits.len() == k + 1 {
                    bits.push(Vec::new());
                }
                bits[k + 1].push(carry);
            }
        }
        k += 1;
        if k >= bits.len() {
            break;
        }
    }
    // The count is now a plain binary number; compare count >= (n+1)/2.
    let count: Vec<Lit> = bits
        .iter()
        .map(|level| level.first().copied().unwrap_or(Lit::FALSE))
        .collect();
    let threshold = (n as u64).div_ceil(2);
    // count >= threshold  ⇔  count + (2^w − threshold) carries out.
    let width = count.len();
    let addend = (1u64 << width) - threshold;
    let mut carry = Lit::FALSE;
    for (i, &c) in count.iter().enumerate() {
        let a_bit = if (addend >> i) & 1 == 1 {
            Lit::TRUE
        } else {
            Lit::FALSE
        };
        let (_, cout) = full_adder(&mut aig, c, a_bit, carry);
        carry = cout;
    }
    aig.add_output(carry);
    aig
}

/// A `2^sel_bits`-way multiplexer tree: data inputs first, then selects
/// (EPFL control-logic analog).
pub fn mux_tree(sel_bits: usize) -> Aig {
    assert!(sel_bits >= 1, "mux tree needs at least one select");
    let lanes = 1usize << sel_bits;
    let mut aig = Aig::new(lanes + sel_bits);
    let mut layer: Vec<Lit> = (0..lanes).map(|i| aig.input(i)).collect();
    for s in 0..sel_bits {
        let sel = aig.input(lanes + s);
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(aig.mux(sel, pair[1], pair[0]));
        }
        layer = next;
    }
    aig.add_output(layer[0]);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_is_one_hot() {
        let aig = decoder(3);
        for sel in 0..8u64 {
            let outs = aig.evaluate(sel);
            for (line, &on) in outs.iter().enumerate() {
                assert_eq!(on, line as u64 == sel, "sel {sel} line {line}");
            }
        }
    }

    #[test]
    fn arbiter_grants_lowest_active() {
        let aig = priority_arbiter(5);
        for reqs in 0..32u64 {
            let outs = aig.evaluate(reqs);
            let expect = if reqs == 0 {
                None
            } else {
                Some(reqs.trailing_zeros() as usize)
            };
            for (i, &g) in outs.iter().enumerate() {
                assert_eq!(g, Some(i) == expect, "reqs {reqs:#b} grant {i}");
            }
        }
    }

    #[test]
    fn voter_is_majority() {
        for n in [3usize, 5, 7] {
            let aig = majority_voter(n);
            let tts = aig.output_truth_tables().unwrap();
            assert_eq!(
                tts[0],
                facepoint_truth::TruthTable::majority(n),
                "voter({n})"
            );
        }
    }

    #[test]
    fn mux_tree_selects() {
        let sel_bits = 2;
        let lanes = 4u64;
        let aig = mux_tree(sel_bits);
        for data in 0..16u64 {
            for sel in 0..lanes {
                let m = data | (sel << lanes);
                let out = aig.evaluate(m)[0];
                assert_eq!(out, (data >> sel) & 1 == 1, "data {data:#b} sel {sel}");
            }
        }
    }
}
