//! Parallel-prefix arithmetic generators: the Kogge–Stone adder and an
//! ALU slice.
//!
//! The ripple-carry adder's cuts are narrow and repetitive; a
//! parallel-prefix adder computes the same function with a logarithmic
//! carry tree whose cones are wide and reconvergent — a structurally
//! different source of cut functions over the *same* NPN classes, which
//! makes it a good stress test for classification pipelines (and mirrors
//! how the EPFL suite contains several adder architectures).

use crate::aig::{Aig, Lit};

/// A `bits`-wide Kogge–Stone adder: inputs `a[0..bits]` then
/// `b[0..bits]`, outputs `sum[0..bits]` then the carry-out.
///
/// Classical generate/propagate prefix network:
/// `(g, p) ∘ (g', p') = (g ∨ (p ∧ g'), p ∧ p')` with span doubling each
/// level.
pub fn kogge_stone_adder(bits: usize) -> Aig {
    assert!(bits >= 1, "adder needs at least one bit");
    let mut aig = Aig::new(2 * bits);
    let a: Vec<Lit> = (0..bits).map(|i| aig.input(i)).collect();
    let b: Vec<Lit> = (0..bits).map(|i| aig.input(bits + i)).collect();
    // Bit-level generate and propagate.
    let mut g: Vec<Lit> = Vec::with_capacity(bits);
    let mut p: Vec<Lit> = Vec::with_capacity(bits);
    for i in 0..bits {
        g.push(aig.and(a[i], b[i]));
        p.push(aig.xor(a[i], b[i]));
    }
    // Prefix tree: after the last level, g[i] is the carry out of
    // position i (i.e. the carry *into* position i + 1).
    let propagate = p.clone();
    let mut span = 1;
    while span < bits {
        let mut next_g = g.clone();
        let mut next_p = p.clone();
        for i in span..bits {
            let pg = aig.and(p[i], g[i - span]);
            next_g[i] = aig.or(g[i], pg);
            next_p[i] = aig.and(p[i], p[i - span]);
        }
        g = next_g;
        p = next_p;
        span *= 2;
    }
    // Sums: s_i = p_i ⊕ c_i with c_0 = 0, c_{i+1} = g[i] (prefix carry).
    let mut outs = Vec::with_capacity(bits + 1);
    for i in 0..bits {
        let carry_in = if i == 0 { Lit::FALSE } else { g[i - 1] };
        outs.push(aig.xor(propagate[i], carry_in));
    }
    outs.push(g[bits - 1]);
    for o in outs {
        aig.add_output(o);
    }
    aig
}

/// Operations of the [`alu_slice`] generator, selected by two control
/// bits `(op1, op0)`.
///
/// `00` = AND, `01` = OR, `10` = XOR, `11` = ADD (with ripple carry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Addition.
    Add,
}

impl AluOp {
    /// The `(op1, op0)` encoding.
    pub fn encoding(self) -> (bool, bool) {
        match self {
            AluOp::And => (false, false),
            AluOp::Or => (false, true),
            AluOp::Xor => (true, false),
            AluOp::Add => (true, true),
        }
    }
}

/// A `bits`-wide 4-operation ALU slice: inputs `a[0..bits]`,
/// `b[0..bits]`, then `op0`, `op1`; outputs `bits` result bits.
///
/// Control-steered datapaths produce cut functions mixing MUX and
/// arithmetic structure — the flavour of the EPFL `int2float`/`ctrl`
/// circuits.
pub fn alu_slice(bits: usize) -> Aig {
    assert!(bits >= 1, "ALU needs at least one bit");
    let mut aig = Aig::new(2 * bits + 2);
    let a: Vec<Lit> = (0..bits).map(|i| aig.input(i)).collect();
    let b: Vec<Lit> = (0..bits).map(|i| aig.input(bits + i)).collect();
    let op0 = aig.input(2 * bits);
    let op1 = aig.input(2 * bits + 1);
    // Lane results.
    let mut and_l = Vec::with_capacity(bits);
    let mut or_l = Vec::with_capacity(bits);
    let mut xor_l = Vec::with_capacity(bits);
    let mut add_l = Vec::with_capacity(bits);
    let mut carry = Lit::FALSE;
    for i in 0..bits {
        and_l.push(aig.and(a[i], b[i]));
        or_l.push(aig.or(a[i], b[i]));
        xor_l.push(aig.xor(a[i], b[i]));
        let (s, c) = crate::generators::arithmetic::full_adder(&mut aig, a[i], b[i], carry);
        add_l.push(s);
        carry = c;
    }
    // Output mux per bit: op1 selects {logic pair | arith pair}, op0
    // selects within.
    let mut outs = Vec::with_capacity(bits);
    for i in 0..bits {
        let logic = aig.mux(op0, or_l[i], and_l[i]);
        let arith = aig.mux(op0, add_l[i], xor_l[i]);
        outs.push(aig.mux(op1, arith, logic));
    }
    for o in outs {
        aig.add_output(o);
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outputs_as_u64(aig: &Aig, minterm: u64) -> u64 {
        aig.evaluate(minterm)
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as u64) << i)
            .sum()
    }

    #[test]
    fn kogge_stone_adds() {
        let bits = 4;
        let aig = kogge_stone_adder(bits);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let m = a | (b << bits);
                assert_eq!(outputs_as_u64(&aig, m), a + b, "{a} + {b}");
            }
        }
    }

    #[test]
    fn kogge_stone_matches_ripple_functionally() {
        // Same function, different structure: output truth tables agree
        // with the ripple-carry adder after input re-interleaving.
        let ks = kogge_stone_adder(3);
        let tts = ks.output_truth_tables().unwrap();
        for a in 0..8u64 {
            for b in 0..8u64 {
                let m = a | (b << 3);
                let mut sum = 0u64;
                for (i, tt) in tts.iter().enumerate() {
                    sum |= (tt.bit(m) as u64) << i;
                }
                assert_eq!(sum, a + b);
            }
        }
    }

    #[test]
    fn alu_all_ops() {
        let bits = 3;
        let aig = alu_slice(bits);
        let mask = (1u64 << bits) - 1;
        for a in 0..8u64 {
            for b in 0..8u64 {
                for op in [AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Add] {
                    let (op1, op0) = op.encoding();
                    let m = a
                        | (b << bits)
                        | ((op0 as u64) << (2 * bits))
                        | ((op1 as u64) << (2 * bits + 1));
                    let expect = match op {
                        AluOp::And => a & b,
                        AluOp::Or => a | b,
                        AluOp::Xor => a ^ b,
                        AluOp::Add => (a + b) & mask,
                    };
                    assert_eq!(outputs_as_u64(&aig, m), expect, "{a} {op:?} {b}");
                }
            }
        }
    }

    #[test]
    fn prefix_adder_has_wider_cones_than_ripple() {
        // The structural point of the generator: the top sum bit of the
        // prefix adder sits on a shallower, wider cone.
        let ks = kogge_stone_adder(8);
        let rc = crate::generators::ripple_carry_adder(8);
        assert!(
            ks.num_ands() > rc.num_ands(),
            "prefix trades area for depth"
        );
    }
}
