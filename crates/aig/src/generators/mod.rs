//! Parametric synthetic circuit generators.
//!
//! The paper's workload comes from the EPFL combinational benchmark
//! suite. The suite's circuit files are not redistributable inside this
//! repository, so these generators synthesize the same two families
//! structurally (see DESIGN.md §3, substitution 1):
//!
//! * **arithmetic**: ripple-carry adders, array multipliers, squarers,
//!   barrel shifters, comparators/max units, parity trees;
//! * **control**: decoders, priority arbiters, majority voters, MUX
//!   trees, and random AND/INV logic.
//!
//! Every generator is verified against a behavioural model in its tests,
//! so the cut functions harvested from them are functions of real,
//! correct circuit structures.

mod arithmetic;
mod control;
mod prefix;
mod random_logic;

pub use arithmetic::{
    array_multiplier, barrel_shifter, comparator, max_unit, parity_tree, ripple_carry_adder,
    squarer,
};
pub use control::{decoder, majority_voter, mux_tree, priority_arbiter};
pub use prefix::{alu_slice, kogge_stone_adder, AluOp};
pub use random_logic::random_logic;
