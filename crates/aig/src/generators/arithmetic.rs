//! Arithmetic circuit generators (the EPFL "arithmetic" family).

use crate::aig::{Aig, Lit};

/// A `bits`-wide ripple-carry adder: inputs `a[0..bits]`, `b[0..bits]`
/// (interleaved as `a0, b0, a1, b1, …`), outputs `sum[0..bits]` then
/// `carry`.
///
/// The interleaved input order keeps each full adder's cone local, which
/// produces the same cut-function mix as the EPFL `adder`.
pub fn ripple_carry_adder(bits: usize) -> Aig {
    assert!(bits >= 1, "adder needs at least one bit");
    let mut aig = Aig::new(2 * bits);
    let mut carry = Lit::FALSE;
    let mut sums = Vec::with_capacity(bits + 1);
    for i in 0..bits {
        let a = aig.input(2 * i);
        let b = aig.input(2 * i + 1);
        let (s, c) = full_adder(&mut aig, a, b, carry);
        sums.push(s);
        carry = c;
    }
    for s in sums {
        aig.add_output(s);
    }
    aig.add_output(carry);
    aig
}

/// One full adder: returns `(sum, carry_out)`.
pub fn full_adder(aig: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, cin);
    let carry = aig.maj3(a, b, cin);
    (sum, carry)
}

/// A `bits × bits` array multiplier: inputs `a[0..bits]` then
/// `b[0..bits]`, outputs the `2·bits` product bits, LSB first.
pub fn array_multiplier(bits: usize) -> Aig {
    assert!(bits >= 1, "multiplier needs at least one bit");
    let mut aig = Aig::new(2 * bits);
    let a: Vec<Lit> = (0..bits).map(|i| aig.input(i)).collect();
    let b: Vec<Lit> = (0..bits).map(|i| aig.input(bits + i)).collect();
    // Partial products, added column by column with carry-save chains.
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); 2 * bits];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = aig.and(ai, bj);
            columns[i + j].push(pp);
        }
    }
    let mut outputs = Vec::with_capacity(2 * bits);
    for col in 0..2 * bits {
        while columns[col].len() > 1 {
            if columns[col].len() >= 3 {
                let x = columns[col].pop().expect("len >= 3");
                let y = columns[col].pop().expect("len >= 2");
                let z = columns[col].pop().expect("len >= 1");
                let (s, c) = full_adder(&mut aig, x, y, z);
                columns[col].push(s);
                columns[col + 1].push(c);
            } else {
                let x = columns[col].pop().expect("len == 2");
                let y = columns[col].pop().expect("len == 1");
                let s = aig.xor(x, y);
                let c = aig.and(x, y);
                columns[col].push(s);
                columns[col + 1].push(c);
            }
        }
        outputs.push(columns[col].first().copied().unwrap_or(Lit::FALSE));
    }
    for o in outputs {
        aig.add_output(o);
    }
    aig
}

/// A squarer: the array multiplier with both operands tied to the same
/// `bits` inputs (EPFL `square` analog).
pub fn squarer(bits: usize) -> Aig {
    assert!(bits >= 1, "squarer needs at least one bit");
    let mut aig = Aig::new(bits);
    let a: Vec<Lit> = (0..bits).map(|i| aig.input(i)).collect();
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); 2 * bits];
    for i in 0..bits {
        for j in 0..bits {
            let pp = aig.and(a[i], a[j]);
            columns[i + j].push(pp);
        }
    }
    let mut outputs = Vec::with_capacity(2 * bits);
    for col in 0..2 * bits {
        while columns[col].len() > 1 {
            let x = columns[col].pop().expect("len >= 2");
            let y = columns[col].pop().expect("len >= 1");
            if let Some(z) = columns[col].pop() {
                let (s, c) = full_adder(&mut aig, x, y, z);
                columns[col].push(s);
                columns[col + 1].push(c);
            } else {
                let s = aig.xor(x, y);
                let c = aig.and(x, y);
                columns[col].push(s);
                columns[col + 1].push(c);
            }
        }
        outputs.push(columns[col].first().copied().unwrap_or(Lit::FALSE));
    }
    for o in outputs {
        aig.add_output(o);
    }
    aig
}

/// A barrel rotator over `2^log_width` data inputs and `log_width` shift
/// inputs (EPFL `bar` analog): output `i` is
/// `data[(i + shift) mod width]`.
pub fn barrel_shifter(log_width: usize) -> Aig {
    assert!(log_width >= 1, "barrel shifter needs at least one stage");
    let width = 1usize << log_width;
    let mut aig = Aig::new(width + log_width);
    let mut stage: Vec<Lit> = (0..width).map(|i| aig.input(i)).collect();
    for s in 0..log_width {
        let sel = aig.input(width + s);
        let amount = 1usize << s;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let rotated = stage[(i + amount) % width];
            let kept = stage[i];
            next.push(aig.mux(sel, rotated, kept));
        }
        stage = next;
    }
    for o in stage {
        aig.add_output(o);
    }
    aig
}

/// An unsigned comparator: inputs `a[0..bits]` then `b[0..bits]`, single
/// output `a < b`.
pub fn comparator(bits: usize) -> Aig {
    assert!(bits >= 1, "comparator needs at least one bit");
    let mut aig = Aig::new(2 * bits);
    let mut lt = Lit::FALSE;
    // From LSB to MSB: lt = (¬a ∧ b) ∨ ((a ≡ b) ∧ lt_prev).
    for i in 0..bits {
        let a = aig.input(i);
        let b = aig.input(bits + i);
        let na_b = aig.and(a.complement(), b);
        let eq = aig.xor(a, b).complement();
        let keep = aig.and(eq, lt);
        lt = aig.or(na_b, keep);
    }
    aig.add_output(lt);
    aig
}

/// A max unit (EPFL `max` analog): outputs `max(a, b)` bitwise, plus the
/// comparison bit.
pub fn max_unit(bits: usize) -> Aig {
    assert!(bits >= 1, "max unit needs at least one bit");
    let mut aig = Aig::new(2 * bits);
    let mut lt = Lit::FALSE; // a < b
    for i in 0..bits {
        let a = aig.input(i);
        let b = aig.input(bits + i);
        let na_b = aig.and(a.complement(), b);
        let eq = aig.xor(a, b).complement();
        let keep = aig.and(eq, lt);
        lt = aig.or(na_b, keep);
    }
    let mut outs = Vec::with_capacity(bits + 1);
    for i in 0..bits {
        let a = aig.input(i);
        let b = aig.input(bits + i);
        outs.push(aig.mux(lt, b, a));
    }
    for o in outs {
        aig.add_output(o);
    }
    aig.add_output(lt);
    aig
}

/// A balanced XOR tree over `n` inputs (parity).
pub fn parity_tree(n: usize) -> Aig {
    assert!(n >= 1, "parity needs at least one input");
    let mut aig = Aig::new(n);
    let mut layer: Vec<Lit> = (0..n).map(|i| aig.input(i)).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                aig.xor(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    aig.add_output(layer[0]);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outputs_as_u64(aig: &Aig, minterm: u64) -> u64 {
        aig.evaluate(minterm)
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as u64) << i)
            .sum()
    }

    #[test]
    fn adder_adds() {
        let bits = 4;
        let aig = ripple_carry_adder(bits);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut m = 0u64;
                for i in 0..bits {
                    m |= ((a >> i) & 1) << (2 * i);
                    m |= ((b >> i) & 1) << (2 * i + 1);
                }
                assert_eq!(outputs_as_u64(&aig, m), a + b, "{a} + {b}");
            }
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let bits = 3;
        let aig = array_multiplier(bits);
        for a in 0..8u64 {
            for b in 0..8u64 {
                let m = a | (b << bits);
                assert_eq!(outputs_as_u64(&aig, m), a * b, "{a} × {b}");
            }
        }
    }

    #[test]
    fn squarer_squares() {
        let bits = 4;
        let aig = squarer(bits);
        for a in 0..16u64 {
            assert_eq!(outputs_as_u64(&aig, a), a * a, "{a}²");
        }
    }

    #[test]
    fn barrel_rotates() {
        let log_width = 3;
        let width = 1u64 << log_width;
        let aig = barrel_shifter(log_width);
        for data in [0b1011_0010u64, 0b0000_0001, 0b1111_0000] {
            for shift in 0..width {
                let m = data | (shift << width);
                let out = outputs_as_u64(&aig, m);
                // Output i reads data[(i + shift) mod width]: a right
                // rotation by `shift` within `width` bits.
                let expect = ((data >> shift) | (data << (width - shift))) & ((1 << width) - 1);
                assert_eq!(out, expect, "data {data:#b} shift {shift}");
            }
        }
    }

    #[test]
    fn comparator_compares() {
        let bits = 4;
        let aig = comparator(bits);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let m = a | (b << bits);
                assert_eq!(outputs_as_u64(&aig, m) == 1, a < b, "{a} < {b}");
            }
        }
    }

    #[test]
    fn max_selects_larger() {
        let bits = 3;
        let aig = max_unit(bits);
        for a in 0..8u64 {
            for b in 0..8u64 {
                let m = a | (b << bits);
                let out = outputs_as_u64(&aig, m) & 0b111;
                assert_eq!(out, a.max(b), "max({a},{b})");
            }
        }
    }

    #[test]
    fn parity_tree_is_parity() {
        let aig = parity_tree(6);
        let tts = aig.output_truth_tables().unwrap();
        assert_eq!(tts[0], facepoint_truth::TruthTable::parity(6));
    }
}
