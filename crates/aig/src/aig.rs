//! And-inverter graphs with structural hashing.
//!
//! An AIG represents combinational logic with two-input AND nodes and
//! complemented edges — the representation logic-synthesis tools (ABC,
//! mockturtle) use and the one the paper's EPFL workload is distributed
//! in. Node 0 is the constant; nodes `1..=num_inputs` are the primary
//! inputs; AND nodes follow in topological order by construction.

use std::collections::HashMap;
use std::fmt;

/// A literal: an AIG node with an optional complement.
///
/// Encoded as `node << 1 | complement`, the AIGER convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Constant false (complement of the constant node).
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node index and complement flag.
    pub fn new(node: u32, complemented: bool) -> Self {
        Lit(node << 1 | complemented as u32)
    }

    /// The node this literal points at.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    #[must_use]
    pub fn complement(self) -> Self {
        Lit(self.0 ^ 1)
    }

    /// The raw AIGER encoding (`2·node + complement`).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Builds a literal from its raw AIGER encoding.
    pub fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!{}", self.node())
        } else {
            write!(f, "{}", self.node())
        }
    }
}

/// An and-inverter graph.
///
/// # Examples
///
/// ```
/// use facepoint_aig::{Aig, Lit};
///
/// // f = (a ∧ b) ∨ c, built from ANDs and inverters.
/// let mut aig = Aig::new(3);
/// let (a, b, c) = (aig.input(0), aig.input(1), aig.input(2));
/// let ab = aig.and(a, b);
/// let f = aig.or(ab, c);
/// aig.add_output(f);
/// assert_eq!(aig.num_ands(), 2); // or = !(!(ab) ∧ !c)
/// ```
#[derive(Debug, Clone)]
pub struct Aig {
    /// Fanins per node; inputs and the constant store `None`.
    nodes: Vec<Option<(Lit, Lit)>>,
    num_inputs: usize,
    outputs: Vec<Lit>,
    strash: HashMap<(Lit, Lit), u32>,
}

impl Aig {
    /// Creates an AIG with `num_inputs` primary inputs and no gates.
    pub fn new(num_inputs: usize) -> Self {
        Aig {
            nodes: vec![None; num_inputs + 1],
            num_inputs,
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// The literal of primary input `i` (uncomplemented).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    pub fn input(&self, i: usize) -> Lit {
        assert!(i < self.num_inputs, "input index {i} out of range");
        Lit::new(i as u32 + 1, false)
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Total number of nodes (constant + inputs + ANDs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - self.num_inputs - 1
    }

    /// The primary outputs.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Registers a primary output.
    pub fn add_output(&mut self, lit: Lit) {
        assert!(
            (lit.node() as usize) < self.nodes.len(),
            "output literal references unknown node"
        );
        self.outputs.push(lit);
    }

    /// Whether `node` is a primary input.
    pub fn is_input(&self, node: u32) -> bool {
        node >= 1 && (node as usize) <= self.num_inputs
    }

    /// Whether `node` is the constant node.
    pub fn is_const(&self, node: u32) -> bool {
        node == 0
    }

    /// Fanins of an AND node, `None` for inputs/constant.
    pub fn fanins(&self, node: u32) -> Option<(Lit, Lit)> {
        self.nodes[node as usize]
    }

    /// Creates (or reuses) the AND of two literals, with constant folding
    /// and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant folding.
        if a == Lit::FALSE || b == Lit::FALSE || a == b.complement() {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        assert!(
            (a.node() as usize) < self.nodes.len() && (b.node() as usize) < self.nodes.len(),
            "fanin literal references unknown node"
        );
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&node) = self.strash.get(&key) {
            return Lit::new(node, false);
        }
        let node = self.nodes.len() as u32;
        self.nodes.push(Some(key));
        self.strash.insert(key, node);
        Lit::new(node, false)
    }

    /// `a ∨ b` via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.complement(), b.complement()).complement()
    }

    /// `a ⊕ b` (three ANDs: `¬(¬(a ∧ ¬b) ∧ ¬(¬a ∧ b))`).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let left = self.and(a, b.complement());
        let right = self.and(a.complement(), b);
        self.or(left, right)
    }

    /// `if s then t else e` (two ANDs + OR).
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let on = self.and(s, t);
        let off = self.and(s.complement(), e);
        self.or(on, off)
    }

    /// `¬(a ∧ b)`.
    pub fn nand(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a, b).complement()
    }

    /// Majority of three literals (used by adders and voters).
    pub fn maj3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// Indices of all AND nodes in topological order.
    pub fn and_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        (self.num_inputs as u32 + 1..self.nodes.len() as u32).filter(move |&n| !self.is_input(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let l = Lit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.is_complemented());
        assert_eq!(l.complement().raw(), 10);
        assert_eq!(Lit::from_raw(11), l);
        assert_eq!(format!("{l}"), "!5");
    }

    #[test]
    fn constant_folding() {
        let mut aig = Aig::new(2);
        let a = aig.input(0);
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.complement()), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0, "folding creates no nodes");
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.input(0), aig.input(1));
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y, "commuted fanins share a node");
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn xor_is_three_gates() {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.input(0), aig.input(1));
        let _ = aig.xor(a, b);
        assert_eq!(aig.num_ands(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_input_index() {
        let aig = Aig::new(2);
        let _ = aig.input(2);
    }

    #[test]
    fn outputs_recorded() {
        let mut aig = Aig::new(1);
        let a = aig.input(0);
        aig.add_output(a.complement());
        assert_eq!(aig.outputs(), &[a.complement()]);
    }
}
