//! AIG simulation: word-parallel pattern simulation and exhaustive
//! truth-table extraction of the primary outputs.

use crate::aig::{Aig, Lit};
use facepoint_truth::TruthTable;

impl Aig {
    /// Simulates 64 input patterns at once: `patterns[i]` carries one bit
    /// per pattern for input `i`; the result carries one word per output.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.len() != num_inputs`.
    pub fn simulate_words(&self, patterns: &[u64]) -> Vec<u64> {
        assert_eq!(
            patterns.len(),
            self.num_inputs(),
            "one pattern word per input required"
        );
        let mut values = vec![0u64; self.num_nodes()];
        for (i, &p) in patterns.iter().enumerate() {
            values[self.input(i).node() as usize] = p;
        }
        for node in self.and_nodes() {
            let (a, b) = self.fanins(node).expect("AND node has fanins");
            values[node as usize] = lit_value(&values, a) & lit_value(&values, b);
        }
        self.outputs()
            .iter()
            .map(|&o| lit_value(&values, o))
            .collect()
    }

    /// Evaluates the AIG on a single input assignment (bit `i` of
    /// `minterm` is the value of input `i`).
    pub fn evaluate(&self, minterm: u64) -> Vec<bool> {
        let patterns: Vec<u64> = (0..self.num_inputs())
            .map(|i| if (minterm >> i) & 1 == 1 { u64::MAX } else { 0 })
            .collect();
        self.simulate_words(&patterns)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Exhaustively computes the truth table of every primary output over
    /// the primary inputs.
    ///
    /// # Errors
    ///
    /// Returns [`facepoint_truth::Error::TooManyVariables`] if the AIG
    /// has more than 16 inputs.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_aig::Aig;
    /// use facepoint_truth::TruthTable;
    ///
    /// let mut aig = Aig::new(3);
    /// let (a, b, c) = (aig.input(0), aig.input(1), aig.input(2));
    /// let m = aig.maj3(a, b, c);
    /// aig.add_output(m);
    /// assert_eq!(aig.output_truth_tables()?[0], TruthTable::majority(3));
    /// # Ok::<(), facepoint_truth::Error>(())
    /// ```
    pub fn output_truth_tables(&self) -> facepoint_truth::Result<Vec<TruthTable>> {
        let n = self.num_inputs();
        let mut tables: Vec<TruthTable> = Vec::with_capacity(self.num_nodes());
        tables.push(TruthTable::zero(n)?); // constant node
        for i in 0..n {
            tables.push(TruthTable::projection(n, i)?);
        }
        for node in self.and_nodes() {
            let (a, b) = self.fanins(node).expect("AND node has fanins");
            let ta = lit_table(&tables, a);
            let tb = lit_table(&tables, b);
            tables.push(ta & tb);
        }
        Ok(self
            .outputs()
            .iter()
            .map(|&o| lit_table(&tables, o))
            .collect())
    }
}

fn lit_value(values: &[u64], lit: Lit) -> u64 {
    let v = values[lit.node() as usize];
    if lit.is_complemented() {
        !v
    } else {
        v
    }
}

fn lit_table(tables: &[TruthTable], lit: Lit) -> TruthTable {
    let t = &tables[lit.node() as usize];
    if lit.is_complemented() {
        !t
    } else {
        t.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_aig() -> Aig {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.input(0), aig.input(1));
        let x = aig.xor(a, b);
        aig.add_output(x);
        aig
    }

    #[test]
    fn exhaustive_xor() {
        let aig = xor_aig();
        let tts = aig.output_truth_tables().unwrap();
        assert_eq!(tts[0], TruthTable::parity(2));
    }

    #[test]
    fn word_simulation_matches_exhaustive() {
        let mut aig = Aig::new(4);
        let (a, b, c, d) = (aig.input(0), aig.input(1), aig.input(2), aig.input(3));
        let m = aig.maj3(a, b, c);
        let f = aig.mux(d, m, a);
        aig.add_output(f);
        let tt = &aig.output_truth_tables().unwrap()[0];
        // Drive the 16 exhaustive patterns through the word simulator.
        let patterns: Vec<u64> = (0..4)
            .map(|i| {
                let mut w = 0u64;
                for m in 0..16u64 {
                    w |= ((m >> i) & 1) << m;
                }
                w
            })
            .collect();
        let out = aig.simulate_words(&patterns)[0];
        for m in 0..16u64 {
            assert_eq!((out >> m) & 1 == 1, tt.bit(m), "pattern {m}");
        }
    }

    #[test]
    fn evaluate_single_patterns() {
        let aig = xor_aig();
        assert_eq!(aig.evaluate(0b00), vec![false]);
        assert_eq!(aig.evaluate(0b01), vec![true]);
        assert_eq!(aig.evaluate(0b10), vec![true]);
        assert_eq!(aig.evaluate(0b11), vec![false]);
    }

    #[test]
    fn complemented_output() {
        let mut aig = Aig::new(1);
        let a = aig.input(0);
        aig.add_output(a.complement());
        let tts = aig.output_truth_tables().unwrap();
        assert_eq!(tts[0], !&TruthTable::projection(1, 0).unwrap());
    }

    #[test]
    fn constant_outputs() {
        let mut aig = Aig::new(2);
        aig.add_output(Lit::TRUE);
        aig.add_output(Lit::FALSE);
        let tts = aig.output_truth_tables().unwrap();
        assert_eq!(tts[0], TruthTable::one(2).unwrap());
        assert_eq!(tts[1], TruthTable::zero(2).unwrap());
    }
}
