//! K-feasible cut enumeration with priority-cut pruning.
//!
//! A *cut* of node `v` is a set of nodes (leaves) such that every path
//! from the inputs to `v` passes through a leaf; a cut is `k`-feasible if
//! it has at most `k` leaves. The paper extracts its workload by
//! enumerating cuts over the EPFL benchmarks and keeping each cut's
//! function — this module implements the standard bottom-up enumeration
//! (merge fanin cut sets, filter dominated cuts, keep the `C` best per
//! node) used by technology mappers.

use crate::aig::Aig;

/// A cut: sorted leaf nodes plus a 64-bit Bloom-style signature for fast
/// dominance pre-checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    leaves: Vec<u32>,
    signature: u64,
}

impl Cut {
    /// The trivial cut `{node}`.
    pub fn trivial(node: u32) -> Self {
        Cut {
            leaves: vec![node],
            signature: 1u64 << (node % 64),
        }
    }

    /// The sorted leaf nodes.
    pub fn leaves(&self) -> &[u32] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Merges two cuts; `None` if the union exceeds `k` leaves.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        // Cheap reject: the union's signature popcount lower-bounds the
        // true leaf count only loosely, but a full merge is linear anyway.
        let mut leaves = Vec::with_capacity(self.leaves.len() + other.leaves.len());
        let (mut i, mut j) = (0, 0);
        while i < self.leaves.len() || j < other.leaves.len() {
            if leaves.len() > k {
                return None;
            }
            let next = match (self.leaves.get(i), other.leaves.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                    a
                }
                (Some(&a), Some(&b)) if a < b => {
                    i += 1;
                    a
                }
                (Some(_), Some(&b)) => {
                    j += 1;
                    b
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!(),
            };
            leaves.push(next);
        }
        if leaves.len() > k {
            return None;
        }
        Some(Cut {
            signature: self.signature | other.signature,
            leaves,
        })
    }

    /// Whether `self` dominates `other` (`self ⊆ other`): the dominated
    /// cut is redundant for enumeration purposes.
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.leaves.len() > other.leaves.len() || self.signature & !other.signature != 0 {
            return false;
        }
        self.leaves
            .iter()
            .all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Which cuts survive when a node's cut list exceeds the cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CutPriority {
    /// Keep the smallest cuts — the technology-mapping default (small
    /// cuts are cheaper to implement).
    #[default]
    SmallFirst,
    /// Keep the largest cuts — the function-harvesting setting: wide
    /// cuts are the scarce resource when extracting functions of large
    /// support (see [`Extractor::for_support`](crate::Extractor)).
    LargeFirst,
}

/// Configuration for cut enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CutConfig {
    /// Maximum leaves per cut (`k`).
    pub max_leaves: usize,
    /// Maximum cuts kept per node. The trivial cut does not count
    /// against the limit.
    pub max_cuts_per_node: usize,
    /// Which cuts to keep when truncating.
    pub priority: CutPriority,
}

impl Default for CutConfig {
    /// `k = 6`, 20 cuts per node — typical technology-mapping settings.
    fn default() -> Self {
        CutConfig {
            max_leaves: 6,
            max_cuts_per_node: 20,
            priority: CutPriority::SmallFirst,
        }
    }
}

/// All enumerated cuts, indexed by node.
#[derive(Debug)]
pub struct CutSet {
    cuts: Vec<Vec<Cut>>,
}

impl CutSet {
    /// The cuts of `node` (first entry is the trivial cut).
    pub fn of(&self, node: u32) -> &[Cut] {
        &self.cuts[node as usize]
    }

    /// Total number of cuts across all nodes.
    pub fn total(&self) -> usize {
        self.cuts.iter().map(Vec::len).sum()
    }

    /// Iterates `(node, cut)` over all non-trivial cuts.
    pub fn non_trivial(&self) -> impl Iterator<Item = (u32, &Cut)> + '_ {
        self.cuts.iter().enumerate().flat_map(|(node, cuts)| {
            cuts.iter()
                .filter(move |c| !(c.size() == 1 && c.leaves()[0] == node as u32))
                .map(move |c| (node as u32, c))
        })
    }
}

/// Enumerates k-feasible cuts for every node of the AIG.
pub fn enumerate_cuts(aig: &Aig, config: &CutConfig) -> CutSet {
    let k = config.max_leaves;
    let cap = config.max_cuts_per_node;
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    // Constant node: no cuts. Inputs: the trivial cut.
    for i in 0..aig.num_inputs() {
        let node = aig.input(i).node();
        cuts[node as usize] = vec![Cut::trivial(node)];
    }
    let sort_by_priority = |v: &mut Vec<Cut>| match config.priority {
        CutPriority::SmallFirst => v.sort_by(|x, y| {
            x.size()
                .cmp(&y.size())
                .then_with(|| x.leaves.cmp(&y.leaves))
        }),
        CutPriority::LargeFirst => v.sort_by(|x, y| {
            y.size()
                .cmp(&x.size())
                .then_with(|| x.leaves.cmp(&y.leaves))
        }),
    };
    for node in aig.and_nodes() {
        let (a, b) = aig.fanins(node).expect("AND node");
        let mut merged: Vec<Cut> = Vec::new();
        for ca in &cuts[a.node() as usize] {
            for cb in &cuts[b.node() as usize] {
                if let Some(c) = ca.merge(cb, k) {
                    match config.priority {
                        // Mapping mode: full dominance filtering keeps
                        // the cut list an antichain.
                        CutPriority::SmallFirst => {
                            if !merged.iter().any(|m| m.dominates(&c)) {
                                merged.retain(|m| !c.dominates(m));
                                merged.push(c);
                            }
                        }
                        // Harvest mode: dominated (superset) cuts shrink
                        // to the same function anyway, so skip the
                        // quadratic dominance pass and only drop exact
                        // duplicates.
                        CutPriority::LargeFirst => {
                            if !merged.iter().any(|m| m.leaves == c.leaves) {
                                merged.push(c);
                            }
                        }
                    }
                    // Keep the working list bounded so duplicate and
                    // dominance scans stay O(cap) — classic priority-cut
                    // behaviour (may drop non-dominated cuts, which is
                    // the accepted trade-off).
                    if merged.len() >= 2 * cap + 16 {
                        sort_by_priority(&mut merged);
                        merged.truncate(cap);
                    }
                }
            }
        }
        sort_by_priority(&mut merged);
        merged.truncate(cap);
        let mut node_cuts = vec![Cut::trivial(node)];
        node_cuts.append(&mut merged);
        cuts[node as usize] = node_cuts;
    }
    CutSet { cuts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_aig(depth: usize) -> Aig {
        // x0 ∧ x1 ∧ … ∧ x_depth as a chain.
        let mut aig = Aig::new(depth + 1);
        let mut acc = aig.input(0);
        for i in 1..=depth {
            let x = aig.input(i);
            acc = aig.and(acc, x);
        }
        aig.add_output(acc);
        aig
    }

    #[test]
    fn trivial_and_merged_cuts() {
        let aig = chain_aig(2); // (x0 ∧ x1) ∧ x2
        let cuts = enumerate_cuts(&aig, &CutConfig::default());
        let top = aig.outputs()[0].node();
        let of_top = cuts.of(top);
        // Trivial cut + {and01, x2} + {x0, x1, x2}.
        assert_eq!(of_top.len(), 3);
        assert_eq!(of_top[0].leaves(), &[top]);
        assert!(of_top.iter().any(|c| c.size() == 3));
    }

    #[test]
    fn k_limit_respected() {
        let aig = chain_aig(7);
        let cfg = CutConfig {
            max_leaves: 4,
            max_cuts_per_node: 50,
            priority: CutPriority::default(),
        };
        let cuts = enumerate_cuts(&aig, &cfg);
        for node in 0..aig.num_nodes() as u32 {
            for c in cuts.of(node) {
                assert!(c.size() <= 4, "node {node} cut too large");
            }
        }
    }

    #[test]
    fn dominance_filtering() {
        let a = Cut {
            leaves: vec![1, 2],
            signature: 0b110,
        };
        let b = Cut {
            leaves: vec![1, 2, 3],
            signature: 0b1110,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
    }

    #[test]
    fn merge_respects_k() {
        let a = Cut {
            leaves: vec![1, 2, 3],
            signature: 0b1110,
        };
        let b = Cut {
            leaves: vec![4, 5],
            signature: 0b110000,
        };
        assert!(a.merge(&b, 4).is_none());
        let m = a.merge(&b, 5).unwrap();
        assert_eq!(m.leaves(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn merge_dedups_shared_leaves() {
        let a = Cut {
            leaves: vec![1, 2],
            signature: 0b110,
        };
        let b = Cut {
            leaves: vec![2, 3],
            signature: 0b1100,
        };
        let m = a.merge(&b, 3).unwrap();
        assert_eq!(m.leaves(), &[1, 2, 3]);
    }

    #[test]
    fn cap_limits_cut_count() {
        let aig = chain_aig(10);
        let cfg = CutConfig {
            max_leaves: 8,
            max_cuts_per_node: 3,
            priority: CutPriority::default(),
        };
        let cuts = enumerate_cuts(&aig, &cfg);
        for node in 0..aig.num_nodes() as u32 {
            assert!(cuts.of(node).len() <= 4, "trivial + 3 at node {node}");
        }
    }

    #[test]
    fn non_trivial_iterator_skips_trivials() {
        let aig = chain_aig(3);
        let cuts = enumerate_cuts(&aig, &CutConfig::default());
        for (node, cut) in cuts.non_trivial() {
            assert!(!(cut.size() == 1 && cut.leaves()[0] == node));
        }
    }
}
