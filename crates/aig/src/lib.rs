//! # facepoint-aig
//!
//! And-inverter graphs, k-feasible cut enumeration and a synthetic
//! EPFL-style benchmark suite — the workload substrate for the DATE 2023
//! NPN-classification reproduction.
//!
//! The paper evaluates its classifier on truth tables "extracted from
//! \[EPFL\] benchmarks using cut enumeration". This crate rebuilds that
//! pipeline end to end:
//!
//! 1. [`Aig`] — structurally hashed and-inverter graphs with
//!    constant folding, word-parallel simulation and exhaustive output
//!    truth tables;
//! 2. [`generators`] — verified parametric circuits covering the EPFL
//!    arithmetic family (adder, multiplier, square, barrel shifter, max,
//!    comparator, parity) and control family (decoder, arbiter, voter,
//!    mux trees, random logic);
//! 3. [`enumerate_cuts`] — bottom-up k-feasible cut enumeration with
//!    dominance filtering and priority-cut capping;
//! 4. [`Extractor`] / [`cut_workload`] — cut-function truth tables,
//!    support-shrunk and deduplicated, bucketed by support size;
//! 5. ASCII AIGER I/O ([`Aig::to_aiger`], [`Aig::from_aiger`]) for
//!    interchange with real benchmark files.
//!
//! # Quick start
//!
//! ```
//! use facepoint_aig::{cut_workload, generators, Extractor};
//!
//! // The paper's pipeline on one circuit:
//! let adder = generators::ripple_carry_adder(8);
//! let fns = Extractor::for_support(5).extract(&adder);
//! assert!(fns.iter().all(|f| f.num_vars() == 5));
//!
//! // Or over the whole synthetic suite:
//! let workload = cut_workload(4, 100);
//! assert!(!workload.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod aig;
mod aiger;
mod cuts;
mod extract;
pub mod generators;
mod simulate;
mod suite;

pub use aig::{Aig, Lit};
pub use aiger::AigerError;
pub use cuts::{enumerate_cuts, Cut, CutConfig, CutSet};
pub use extract::{cut_function, Extractor};
pub use suite::{cut_workload, cut_workload_from, synthetic_suite, Benchmark};
