//! Cut-function extraction: from enumerated cuts to a deduplicated truth
//! table workload — the paper's Section V-A pipeline ("truth tables are
//! extracted from these benchmarks using cut enumeration; we deleted the
//! Boolean functions of the same truth table").

use crate::aig::{Aig, Lit};
use crate::cuts::{enumerate_cuts, Cut, CutConfig, CutSet};
use facepoint_truth::TruthTable;
use std::collections::{HashMap, HashSet};

/// Computes the local function of `node` over the leaves of `cut`
/// (leaf order = ascending node id = variable index).
///
/// # Panics
///
/// Panics if the cut is not a valid cut of `node` (the cone walk would
/// fall through a leaf to the primary inputs) or has more than 16 leaves.
pub fn cut_function(aig: &Aig, node: u32, cut: &Cut) -> TruthTable {
    let k = cut.size();
    assert!(k <= 16, "cut function limited to 16 leaves");
    let mut memo: HashMap<u32, TruthTable> = HashMap::new();
    for (i, &leaf) in cut.leaves().iter().enumerate() {
        memo.insert(leaf, TruthTable::projection(k, i).expect("k <= 16 checked"));
    }
    cone_table(aig, node, k, &mut memo)
}

fn cone_table(aig: &Aig, node: u32, k: usize, memo: &mut HashMap<u32, TruthTable>) -> TruthTable {
    if let Some(t) = memo.get(&node) {
        return t.clone();
    }
    if aig.is_const(node) {
        return TruthTable::zero(k).expect("k <= 16");
    }
    let (a, b) = aig
        .fanins(node)
        .unwrap_or_else(|| panic!("cone of node {node} escapes the cut"));
    let ta = lit_cone(aig, a, k, memo);
    let tb = lit_cone(aig, b, k, memo);
    let t = ta & tb;
    memo.insert(node, t.clone());
    t
}

fn lit_cone(aig: &Aig, lit: Lit, k: usize, memo: &mut HashMap<u32, TruthTable>) -> TruthTable {
    let t = cone_table(aig, lit.node(), k, memo);
    if lit.is_complemented() {
        !t
    } else {
        t
    }
}

/// Workload extractor: enumerate cuts, compute each cut function, shrink
/// it to its true support, and deduplicate identical tables.
#[derive(Debug, Clone)]
pub struct Extractor {
    config: CutConfig,
    /// Discard functions whose support ends up below this size.
    pub min_support: usize,
    /// Discard functions whose support exceeds this size.
    pub max_support: usize,
}

impl Extractor {
    /// An extractor harvesting functions of exactly `support` variables
    /// using cuts of up to `support` leaves.
    ///
    /// The per-node cut capacity scales with the support: large-support
    /// cuts are scarcer (priority cuts favour small ones), so harvesting
    /// wide functions needs a deeper cut list.
    pub fn for_support(support: usize) -> Self {
        Extractor {
            config: CutConfig {
                max_leaves: support,
                max_cuts_per_node: 12 + 4 * support,
                // Wide-support functions only come from wide cuts, which
                // small-first truncation starves out at n ≥ 7.
                priority: if support >= 7 {
                    crate::cuts::CutPriority::LargeFirst
                } else {
                    crate::cuts::CutPriority::SmallFirst
                },
            },
            min_support: support,
            max_support: support,
        }
    }

    /// An extractor with explicit cut configuration and support window.
    pub fn new(config: CutConfig, min_support: usize, max_support: usize) -> Self {
        Extractor {
            config,
            min_support,
            max_support,
        }
    }

    /// Extracts the deduplicated cut-function workload of one AIG.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_aig::{generators, Extractor};
    ///
    /// let adder = generators::ripple_carry_adder(4);
    /// let fns = Extractor::for_support(4).extract(&adder);
    /// assert!(!fns.is_empty());
    /// assert!(fns.iter().all(|f| f.num_vars() == 4));
    /// ```
    pub fn extract(&self, aig: &Aig) -> Vec<TruthTable> {
        let cuts = enumerate_cuts(aig, &self.config);
        self.extract_from_cuts(aig, &cuts)
    }

    /// Extraction reusing an existing cut enumeration.
    pub fn extract_from_cuts(&self, aig: &Aig, cuts: &CutSet) -> Vec<TruthTable> {
        let mut seen: HashSet<TruthTable> = HashSet::new();
        let mut out = Vec::new();
        for (node, cut) in cuts.non_trivial() {
            let tt = cut_function(aig, node, cut).shrink_to_support();
            let support = tt.num_vars();
            if support < self.min_support || support > self.max_support {
                continue;
            }
            if seen.insert(tt.clone()) {
                out.push(tt);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_function_of_known_cone() {
        // f = maj(a, b, c); the 3-leaf cut must yield the majority table.
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.input(0), aig.input(1), aig.input(2));
        let m = aig.maj3(a, b, c);
        aig.add_output(m);
        let cuts = enumerate_cuts(
            &aig,
            &CutConfig {
                max_leaves: 3,
                max_cuts_per_node: 32,
                priority: crate::cuts::CutPriority::default(),
            },
        );
        let top = m.node();
        let full = cuts
            .of(top)
            .iter()
            .find(|cut| cut.size() == 3)
            .expect("3-leaf cut of the output");
        // Cut functions are *node* functions; maj3 ends in an OR, whose
        // literal is complemented, so the node computes ¬maj.
        let node_fn = cut_function(&aig, top, full);
        let out_fn = if m.is_complemented() {
            !node_fn
        } else {
            node_fn
        };
        assert_eq!(out_fn, TruthTable::majority(3));
    }

    #[test]
    fn cut_functions_match_cone_simulation() {
        // Every enumerated cut function must agree with evaluating the
        // cone through the full circuit (cut leaves driven exhaustively,
        // checked via a leaf-to-circuit correspondence on a tree-shaped
        // AIG where every node value is determined by the cut leaves).
        let mut aig = Aig::new(4);
        let (a, b, c, d) = (aig.input(0), aig.input(1), aig.input(2), aig.input(3));
        let ab = aig.and(a, b);
        let cd = aig.or(c, d);
        let f = aig.xor(ab, cd);
        aig.add_output(f);
        let cuts = enumerate_cuts(&aig, &CutConfig::default());
        let tts = aig.output_truth_tables().unwrap();
        // The input cut {a,b,c,d} of the output reproduces its global
        // table.
        let top = f.node();
        let input_cut = cuts
            .of(top)
            .iter()
            .find(|cut| cut.leaves() == [1, 2, 3, 4])
            .expect("primary-input cut");
        let local = cut_function(&aig, top, input_cut);
        let global = if f.is_complemented() {
            !&tts[0]
        } else {
            tts[0].clone()
        };
        assert_eq!(local, global);
    }

    #[test]
    fn extractor_dedups_and_filters() {
        // Two structurally separate but functionally identical ANDs.
        let mut aig = Aig::new(4);
        let (a, b, c, d) = (aig.input(0), aig.input(1), aig.input(2), aig.input(3));
        let x = aig.and(a, b);
        let y = aig.and(c, d);
        let top = aig.or(x, y);
        aig.add_output(top);
        let fns = Extractor::new(CutConfig::default(), 2, 2).extract(&aig);
        // Both 2-input AND nodes shrink to the same table (one survivor),
        // and the top node ¬x ∧ ¬y contributes the 2-input NOR over the
        // cut {x, y} — two distinct 2-variable functions in total.
        assert_eq!(fns.len(), 2);
        assert!(fns.iter().all(|f| f.num_vars() == 2));
        let hexes: std::collections::HashSet<String> = fns.iter().map(|f| f.to_hex()).collect();
        assert!(hexes.contains("8"), "the AND function survives once");
        assert!(hexes.contains("1"), "the top NOR-shaped node function");
    }

    #[test]
    fn support_window_respected() {
        let gen = crate::generators::ripple_carry_adder(3);
        for support in 2..=5usize {
            let fns = Extractor::for_support(support).extract(&gen);
            assert!(
                fns.iter().all(|f| f.num_vars() == support),
                "support {support}"
            );
        }
    }
}
