//! ASCII AIGER (`aag`) serialization.
//!
//! The EPFL benchmarks — and most logic-synthesis interchange — use the
//! AIGER format. Supporting it makes the cut-extraction pipeline usable
//! on real benchmark files when they are available, and round-trips our
//! synthetic circuits for external inspection. Combinational subset only
//! (no latches).

use crate::aig::{Aig, Lit};
use std::fmt::Write as _;

/// Errors from AIGER parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AigerError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A body line failed to parse.
    BadLine(String),
    /// The file declares latches, which this reader does not support.
    LatchesUnsupported,
    /// Literal count mismatch or dangling reference.
    Inconsistent(String),
}

impl std::fmt::Display for AigerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AigerError::BadHeader(l) => write!(f, "malformed aag header: {l:?}"),
            AigerError::BadLine(l) => write!(f, "malformed aag line: {l:?}"),
            AigerError::LatchesUnsupported => write!(f, "latches are not supported"),
            AigerError::Inconsistent(m) => write!(f, "inconsistent aag file: {m}"),
        }
    }
}

impl std::error::Error for AigerError {}

impl Aig {
    /// Serializes to ASCII AIGER (`aag`).
    ///
    /// Node numbering follows the internal layout: inputs first, then AND
    /// nodes in topological order.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_aig::Aig;
    ///
    /// let mut aig = Aig::new(2);
    /// let (a, b) = (aig.input(0), aig.input(1));
    /// let g = aig.and(a, b);
    /// aig.add_output(g);
    /// let text = aig.to_aiger();
    /// assert!(text.starts_with("aag 3 2 0 1 1"));
    /// let back = Aig::from_aiger(&text)?;
    /// assert_eq!(back.output_truth_tables().unwrap(), aig.output_truth_tables().unwrap());
    /// # Ok::<(), facepoint_aig::AigerError>(())
    /// ```
    pub fn to_aiger(&self) -> String {
        let m = self.num_nodes() - 1; // maximum variable index
        let i = self.num_inputs();
        let o = self.outputs().len();
        let a = self.num_ands();
        let mut s = String::new();
        writeln!(s, "aag {m} {i} 0 {o} {a}").expect("string write");
        for idx in 0..i {
            writeln!(s, "{}", self.input(idx).raw()).expect("string write");
        }
        for &out in self.outputs() {
            writeln!(s, "{}", out.raw()).expect("string write");
        }
        for node in self.and_nodes() {
            let (l, r) = self.fanins(node).expect("AND node");
            writeln!(s, "{} {} {}", Lit::new(node, false).raw(), l.raw(), r.raw())
                .expect("string write");
        }
        s
    }

    /// Parses an ASCII AIGER (`aag`) file.
    ///
    /// Supports the combinational subset: zero latches, no symbol table
    /// requirements (symbol/comment sections are ignored). AND fanins may
    /// reference any lower-numbered node (the standard topological
    /// guarantee).
    ///
    /// # Errors
    ///
    /// Returns an [`AigerError`] for malformed headers/lines, latch
    /// declarations, or dangling literals.
    pub fn from_aiger(text: &str) -> Result<Self, AigerError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| AigerError::BadHeader(String::new()))?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 6 || parts[0] != "aag" {
            return Err(AigerError::BadHeader(header.to_string()));
        }
        let nums: Vec<usize> = parts[1..]
            .iter()
            .map(|p| {
                p.parse()
                    .map_err(|_| AigerError::BadHeader(header.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
        if l != 0 {
            return Err(AigerError::LatchesUnsupported);
        }
        if m < i + a {
            return Err(AigerError::Inconsistent(format!(
                "header: M = {m} < I + A = {}",
                i + a
            )));
        }
        let mut aig = Aig::new(i);
        // Input lines: expected to be 2, 4, …, 2i in order.
        for k in 0..i {
            let line = lines
                .next()
                .ok_or_else(|| AigerError::BadLine("missing input line".into()))?;
            let lit: u32 = line
                .trim()
                .parse()
                .map_err(|_| AigerError::BadLine(line.to_string()))?;
            if lit != 2 * (k as u32 + 1) {
                return Err(AigerError::Inconsistent(format!(
                    "input {k} declared as literal {lit}"
                )));
            }
        }
        let mut output_lits = Vec::with_capacity(o);
        for _ in 0..o {
            let line = lines
                .next()
                .ok_or_else(|| AigerError::BadLine("missing output line".into()))?;
            let lit: u32 = line
                .trim()
                .parse()
                .map_err(|_| AigerError::BadLine(line.to_string()))?;
            output_lits.push(lit);
        }
        // AND lines. We must rebuild with strashing *disabled* semantics:
        // our builder dedups, which can renumber nodes. Track a mapping
        // from file literals to rebuilt literals instead.
        let mut lit_map: Vec<Option<Lit>> = vec![None; 2 * (m + 1)];
        lit_map[0] = Some(Lit::FALSE);
        lit_map[1] = Some(Lit::TRUE);
        for k in 0..i {
            let file_lit = 2 * (k + 1);
            lit_map[file_lit] = Some(aig.input(k));
            lit_map[file_lit + 1] = Some(aig.input(k).complement());
        }
        for _ in 0..a {
            let line = lines
                .next()
                .ok_or_else(|| AigerError::BadLine("missing and line".into()))?;
            let nums: Vec<u32> = line
                .split_whitespace()
                .map(|p| p.parse().map_err(|_| AigerError::BadLine(line.to_string())))
                .collect::<Result<_, _>>()?;
            if nums.len() != 3 {
                return Err(AigerError::BadLine(line.to_string()));
            }
            let (lhs, r0, r1) = (nums[0] as usize, nums[1] as usize, nums[2] as usize);
            if lhs % 2 != 0 || lhs >= lit_map.len() {
                return Err(AigerError::Inconsistent(format!("bad AND lhs {lhs}")));
            }
            let f0 = lit_map
                .get(r0)
                .copied()
                .flatten()
                .ok_or_else(|| AigerError::Inconsistent(format!("dangling literal {r0}")))?;
            let f1 = lit_map
                .get(r1)
                .copied()
                .flatten()
                .ok_or_else(|| AigerError::Inconsistent(format!("dangling literal {r1}")))?;
            let g = aig.and(f0, f1);
            lit_map[lhs] = Some(g);
            lit_map[lhs + 1] = Some(g.complement());
        }
        for lit in output_lits {
            let mapped = lit_map
                .get(lit as usize)
                .copied()
                .flatten()
                .ok_or_else(|| AigerError::Inconsistent(format!("dangling output {lit}")))?;
            aig.add_output(mapped);
        }
        Ok(aig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_preserves_behaviour() {
        for aig in [
            generators::ripple_carry_adder(3),
            generators::decoder(3),
            generators::parity_tree(5),
            generators::random_logic(6, 40, 11),
        ] {
            let text = aig.to_aiger();
            let back = Aig::from_aiger(&text).expect("roundtrip parse");
            assert_eq!(back.num_inputs(), aig.num_inputs());
            assert_eq!(back.outputs().len(), aig.outputs().len());
            assert_eq!(
                back.output_truth_tables().unwrap(),
                aig.output_truth_tables().unwrap()
            );
        }
    }

    #[test]
    fn parses_handwritten_example() {
        // Half adder from the AIGER spec family: sum and carry of a, b.
        let text = "aag 5 2 0 2 3\n2\n4\n10\n6\n6 2 4\n8 3 5\n10 7 9\n";
        let aig = Aig::from_aiger(text).expect("valid file");
        assert_eq!(aig.num_inputs(), 2);
        let tts = aig.output_truth_tables().unwrap();
        // Output 0 (literal 10) is XOR (sum), output 1 (literal 6) is AND
        // (carry).
        assert_eq!(tts[0], facepoint_truth::TruthTable::parity(2));
        assert_eq!(tts[1].to_hex(), "8");
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 1 0 1 0 0\n2 3\n";
        assert!(matches!(
            Aig::from_aiger(text),
            Err(AigerError::LatchesUnsupported)
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Aig::from_aiger("not an aiger file").is_err());
        assert!(Aig::from_aiger("aag 1 2 3").is_err());
        assert!(Aig::from_aiger("aag 2 1 0 1 1\n2\n4\n4 2 99\n").is_err());
    }
}
