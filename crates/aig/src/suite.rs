//! The synthetic EPFL-style benchmark suite and workload builder.
//!
//! [`synthetic_suite`] assembles one representative of each circuit
//! family; [`cut_workload`] runs the full paper pipeline — cut
//! enumeration over every suite circuit, support shrinking, global
//! deduplication — and returns the truth tables with exactly the
//! requested support size, just like the per-`n` rows of Tables II/III.

use crate::aig::Aig;
use crate::extract::Extractor;
use crate::generators;
use facepoint_truth::TruthTable;
use std::collections::HashSet;

/// A named benchmark circuit.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (EPFL-style).
    pub name: &'static str,
    /// The circuit.
    pub aig: Aig,
}

/// Builds the default synthetic suite: arithmetic and control circuits
/// sized so that the whole-suite cut enumeration finishes in seconds.
///
/// # Examples
///
/// ```
/// use facepoint_aig::synthetic_suite;
///
/// let suite = synthetic_suite();
/// assert!(suite.iter().any(|b| b.name == "adder"));
/// assert!(suite.len() >= 10);
/// ```
pub fn synthetic_suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "adder",
            aig: generators::ripple_carry_adder(24),
        },
        Benchmark {
            name: "adder_ks",
            aig: generators::kogge_stone_adder(16),
        },
        Benchmark {
            name: "alu",
            aig: generators::alu_slice(6),
        },
        Benchmark {
            name: "multiplier",
            aig: generators::array_multiplier(7),
        },
        Benchmark {
            name: "square",
            aig: generators::squarer(8),
        },
        Benchmark {
            name: "bar",
            aig: generators::barrel_shifter(4),
        },
        Benchmark {
            name: "max",
            aig: generators::max_unit(10),
        },
        Benchmark {
            name: "comparator",
            aig: generators::comparator(12),
        },
        Benchmark {
            name: "parity",
            aig: generators::parity_tree(16),
        },
        Benchmark {
            name: "dec",
            aig: generators::decoder(5),
        },
        Benchmark {
            name: "arbiter",
            aig: generators::priority_arbiter(16),
        },
        Benchmark {
            name: "voter",
            aig: generators::majority_voter(11),
        },
        Benchmark {
            name: "ctrl",
            aig: generators::mux_tree(3),
        },
        Benchmark {
            name: "random1",
            aig: generators::random_logic(16, 360, 0xFACE),
        },
        Benchmark {
            name: "random2",
            aig: generators::random_logic(14, 280, 0xB00C),
        },
        Benchmark {
            name: "random3",
            aig: generators::random_logic(12, 200, 0x5EED),
        },
        Benchmark {
            name: "random4",
            aig: generators::random_logic(18, 420, 0xC0DE),
        },
        // Wide-cone circuits feeding the n ≥ 8 rows: their outputs depend
        // on many inputs, so large-support cuts are plentiful.
        Benchmark {
            name: "ctrl_wide",
            aig: generators::mux_tree(4),
        },
        Benchmark {
            name: "voter_wide",
            aig: generators::majority_voter(13),
        },
        Benchmark {
            name: "random_wide",
            aig: generators::random_logic(24, 700, 0xD1CE),
        },
        Benchmark {
            name: "adder_wide",
            aig: generators::ripple_carry_adder(32),
        },
    ]
}

/// Extracts the deduplicated cut-function workload with support exactly
/// `n` from the whole suite (the per-`n` input of the paper's Tables
/// II/III). Deduplication is global across circuits, matching the
/// paper's "we deleted the Boolean functions of the same truth table".
///
/// `limit` truncates the workload (0 = unlimited) so large-`n` tables
/// stay laptop-sized.
pub fn cut_workload(n: usize, limit: usize) -> Vec<TruthTable> {
    cut_workload_from(&synthetic_suite(), n, limit)
}

/// [`cut_workload`] over a caller-provided suite.
pub fn cut_workload_from(suite: &[Benchmark], n: usize, limit: usize) -> Vec<TruthTable> {
    let extractor = Extractor::for_support(n);
    let mut seen: HashSet<TruthTable> = HashSet::new();
    let mut out = Vec::new();
    'outer: for bench in suite {
        for tt in extractor.extract(&bench.aig) {
            if seen.insert(tt.clone()) {
                out.push(tt);
                if limit != 0 && out.len() >= limit {
                    break 'outer;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_builds_and_has_unique_names() {
        let suite = synthetic_suite();
        let names: HashSet<&str> = suite.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), suite.len());
        for b in &suite {
            assert!(b.aig.num_ands() > 0, "{} has gates", b.name);
            assert!(!b.aig.outputs().is_empty(), "{} has outputs", b.name);
        }
    }

    #[test]
    fn workload_has_requested_support_and_no_duplicates() {
        let fns = cut_workload(4, 500);
        assert!(!fns.is_empty());
        let unique: HashSet<&TruthTable> = fns.iter().collect();
        assert_eq!(unique.len(), fns.len(), "dedup is global");
        assert!(fns.iter().all(|f| f.num_vars() == 4));
    }

    #[test]
    fn limit_truncates() {
        let fns = cut_workload(4, 10);
        assert_eq!(fns.len(), 10);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = cut_workload(5, 100);
        let b = cut_workload(5, 100);
        assert_eq!(a, b);
    }
}
