//! Property-based tests of the AIG substrate: random circuits must
//! simulate consistently, round-trip through AIGER, and yield cut
//! functions that agree with whole-circuit simulation.

use facepoint_aig::{cut_function, enumerate_cuts, generators, Aig, CutConfig};
use proptest::prelude::*;

/// Strategy: a random-logic circuit described by (inputs, gates, seed).
fn arb_circuit() -> impl Strategy<Value = Aig> {
    (2usize..=8, 4usize..=60, any::<u64>())
        .prop_map(|(inputs, gates, seed)| generators::random_logic(inputs, gates, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn word_simulation_matches_truth_tables(aig in arb_circuit()) {
        let tts = aig.output_truth_tables().unwrap();
        // Drive all minterms (≤ 256 for ≤ 8 inputs) through the word
        // simulator, 64 at a time.
        let n = aig.num_inputs();
        let total = 1u64 << n;
        for base in (0..total).step_by(64) {
            let patterns: Vec<u64> = (0..n)
                .map(|i| {
                    let mut w = 0u64;
                    for b in 0..64.min(total - base) {
                        if ((base + b) >> i) & 1 == 1 {
                            w |= 1 << b;
                        }
                    }
                    w
                })
                .collect();
            let outs = aig.simulate_words(&patterns);
            for (o, word) in outs.iter().enumerate() {
                for b in 0..64.min(total - base) {
                    prop_assert_eq!(
                        (word >> b) & 1 == 1,
                        tts[o].bit(base + b),
                        "output {} minterm {}", o, base + b
                    );
                }
            }
        }
    }

    #[test]
    fn aiger_roundtrip_behaviour(aig in arb_circuit()) {
        let text = aig.to_aiger();
        let back = Aig::from_aiger(&text).unwrap();
        prop_assert_eq!(back.num_inputs(), aig.num_inputs());
        prop_assert_eq!(
            back.output_truth_tables().unwrap(),
            aig.output_truth_tables().unwrap()
        );
    }

    #[test]
    fn cut_functions_are_cone_functions(aig in arb_circuit()) {
        // For each enumerated cut whose leaves are all primary inputs,
        // the cut function (padded back onto the full input space) must
        // match the node's global function.
        let cuts = enumerate_cuts(&aig, &CutConfig::default());
        let n = aig.num_inputs();
        // Global tables for every node: reuse output machinery by making
        // every node an output of a scratch copy.
        let mut scratch = aig.clone();
        let nodes: Vec<u32> = (1..aig.num_nodes() as u32).collect();
        for &node in &nodes {
            scratch.add_output(facepoint_aig::Lit::new(node, false));
        }
        let all_tables = scratch.output_truth_tables().unwrap();
        let offset = aig.outputs().len();
        for (idx, &node) in nodes.iter().enumerate() {
            for cut in cuts.of(node) {
                if !cut.leaves().iter().all(|&l| aig.is_input(l)) {
                    continue;
                }
                let local = cut_function(&aig, node, cut);
                // Scatter the local table onto the global input space.
                let global = &all_tables[offset + idx];
                for m in 0..1u64 << n {
                    let mut local_m = 0u64;
                    for (j, &leaf) in cut.leaves().iter().enumerate() {
                        let input_idx = leaf as u64 - 1;
                        local_m |= ((m >> input_idx) & 1) << j;
                    }
                    prop_assert_eq!(
                        local.bit(local_m),
                        global.bit(m),
                        "node {} cut {:?} minterm {}", node, cut.leaves(), m
                    );
                }
            }
        }
    }

    #[test]
    fn aiger_parser_never_panics_on_garbage(text in ".{0,200}") {
        // Arbitrary input must be rejected gracefully, never panic.
        let _ = Aig::from_aiger(&text);
    }

    #[test]
    fn aiger_parser_never_panics_on_structured_garbage(
        m in 0usize..20, i in 0usize..20, o in 0usize..20, a in 0usize..20,
        body in proptest::collection::vec(0u32..200, 0..40),
    ) {
        // Headers with arbitrary counts and arbitrary numeric bodies.
        let mut text = format!("aag {m} {i} 0 {o} {a}\n");
        for chunk in body.chunks(3) {
            let line: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
            text.push_str(&line.join(" "));
            text.push('\n');
        }
        let _ = Aig::from_aiger(&text);
    }

    #[test]
    fn strashing_is_sound(aig in arb_circuit()) {
        // No two AND nodes share the same (normalized) fanin pair.
        let mut seen = std::collections::HashSet::new();
        for node in aig.and_nodes() {
            let (a, b) = aig.fanins(node).unwrap();
            prop_assert!(seen.insert((a, b)), "duplicate structural node");
        }
    }
}
