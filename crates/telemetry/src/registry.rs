//! The [`Registry`]: a named collection of instruments with a stable
//! snapshot and two renderings — text exposition and flat JSON.

use crate::cells::{Counter, Gauge};
use crate::hist::{HistogramSnapshot, LatencyHistogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A closure sampled at snapshot time for a counter-valued series.
type CounterFn = Box<dyn Fn() -> u64 + Send + Sync>;
/// A closure sampled at snapshot time for a gauge-valued series.
type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
    CounterFn(CounterFn),
    GaugeFn(GaugeFn),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
            Instrument::CounterFn(_) => "counter_fn",
            Instrument::GaugeFn(_) => "gauge_fn",
        }
    }
}

/// One sampled value in a [`Registry::snapshot`].
///
/// The histogram variant inlines its full 64-bucket state — snapshots
/// are cold-path (scrapes), and keeping the buckets inline means one
/// allocation per snapshot vector, not one per histogram.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// A monotone total.
    Counter(u64),
    /// A signed level.
    Gauge(i64),
    /// A sampled floating-point gauge (ratios and the like).
    Float(f64),
    /// A full histogram state.
    Histogram(HistogramSnapshot),
}

/// A name→instrument map. Registration (startup) takes a lock and
/// allocates; recording through the returned `Arc` handles touches
/// neither the registry nor the heap. Snapshots walk the map in name
/// order, so renderings are byte-stable for identical states.
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

/// Metric names are `snake_case` identifiers: `[a-z_][a-z0-9_]*`.
/// Keeping the grammar this tight makes the text exposition trivially
/// parseable (`name SP value`, no escaping anywhere).
fn check_name(name: &str) {
    let mut chars = name.chars();
    let ok = match chars.next() {
        Some(c) => {
            (c.is_ascii_lowercase() || c == '_')
                && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        }
        None => false,
    };
    assert!(ok, "metric name {name:?} is not [a-z_][a-z0-9_]*");
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, creating it on first use. Calling
    /// again with the same name returns the same instrument.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name, or if `name` is already registered
    /// as a different instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        check_name(name);
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or a kind collision.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        check_name(name);
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The latency histogram named `name`, creating it on first use.
    /// By repo convention histogram names end in `_nanos` and record
    /// nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or a kind collision.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        check_name(name);
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(LatencyHistogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Registers a counter-valued series sampled from `f` at snapshot
    /// time — for totals a subsystem already tracks in its own
    /// atomics (cache hits, pool steals) that would be wasteful to
    /// double-count. Replaces any previous sampler under `name`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or a kind collision with a
    /// non-sampled instrument.
    pub fn counter_fn(&self, name: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        check_name(name);
        let mut map = self.instruments.lock().unwrap();
        if let Some(existing) = map.get(name) {
            assert!(
                matches!(existing, Instrument::CounterFn(_)),
                "metric {name:?} already registered as a {}",
                existing.kind()
            );
        }
        map.insert(name.to_string(), Instrument::CounterFn(Box::new(f)));
    }

    /// Registers a float-gauge series sampled from `f` at snapshot
    /// time (queue depths, hit ratios). Replaces any previous sampler
    /// under `name`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or a kind collision with a
    /// non-sampled instrument.
    pub fn gauge_fn(&self, name: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        check_name(name);
        let mut map = self.instruments.lock().unwrap();
        if let Some(existing) = map.get(name) {
            assert!(
                matches!(existing, Instrument::GaugeFn(_)),
                "metric {name:?} already registered as a {}",
                existing.kind()
            );
        }
        map.insert(name.to_string(), Instrument::GaugeFn(Box::new(f)));
    }

    /// Samples every instrument, in name order.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.instruments.lock().unwrap();
        map.iter()
            .map(|(name, inst)| {
                let value = match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    Instrument::CounterFn(f) => MetricValue::Counter(f()),
                    Instrument::GaugeFn(f) => MetricValue::Float(f()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Renders the snapshot as the text exposition of PROTOCOL.md
    /// §4.12: one `name SP value LF` line per series, names sorted. A
    /// histogram `h` expands to `h_count`, `h_sum`, `h_p50`, `h_p90`,
    /// `h_p99` and `h_max`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            for (suffix, v) in flatten(&value) {
                out.push_str(&name);
                out.push_str(suffix);
                out.push(' ');
                out.push_str(&v);
                out.push('\n');
            }
        }
        out
    }

    /// Renders the snapshot as one flat JSON object with the same
    /// flattened keys and numeric values as [`Registry::render_text`]
    /// (hand-serialized like the `BENCH_*.json` files — no serde in
    /// the offline build).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, value) in self.snapshot() {
            for (suffix, v) in flatten(&value) {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push('"');
                out.push_str(&name);
                out.push_str(suffix);
                out.push_str("\": ");
                out.push_str(&v);
            }
        }
        out.push('}');
        out
    }
}

/// Expands one metric value into `(name suffix, rendered number)`
/// pairs. Floats render finite (non-finite samples become 0, so both
/// expositions stay parseable whatever a sampler returns).
fn flatten(value: &MetricValue) -> Vec<(&'static str, String)> {
    match value {
        MetricValue::Counter(v) => vec![("", v.to_string())],
        MetricValue::Gauge(v) => vec![("", v.to_string())],
        MetricValue::Float(v) => {
            let v = if v.is_finite() { *v } else { 0.0 };
            vec![("", format!("{v:.6}"))]
        }
        MetricValue::Histogram(h) => vec![
            ("_count", h.count().to_string()),
            ("_sum", h.sum.to_string()),
            ("_p50", h.p50().to_string()),
            ("_p90", h.p90().to_string()),
            ("_p99", h.p99().to_string()),
            ("_max", h.max.to_string()),
        ],
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.instruments.lock().unwrap().keys().cloned().collect();
        f.debug_struct("Registry").field("names", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name() {
        let r = Registry::new();
        let a = r.counter("hits_total");
        let b = r.counter("hits_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = r.gauge("depth");
        g.add(5);
        let h = r.histogram("lat_nanos");
        h.record(100);
        r.counter_fn("sampled_total", || 7);
        r.gauge_fn("ratio", || 0.25);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["depth", "hits_total", "lat_nanos", "ratio", "sampled_total"],
            "snapshot is name-sorted"
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collisions_panic() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    #[should_panic(expected = "is not")]
    fn bad_names_panic() {
        Registry::new().counter("Not-Valid");
    }

    #[test]
    fn text_exposition_grammar() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.gauge("a_level").set(-3);
        r.histogram("lat_nanos").record(5);
        r.gauge_fn("nan_guard", || f64::NAN);
        let text = r.render_text();
        let expected = "a_level -3\n\
                        b_total 2\n\
                        lat_nanos_count 1\n\
                        lat_nanos_sum 5\n\
                        lat_nanos_p50 5\n\
                        lat_nanos_p90 5\n\
                        lat_nanos_p99 5\n\
                        lat_nanos_max 5\n\
                        nan_guard 0.000000\n";
        assert_eq!(text, expected);
        for line in text.lines() {
            let (name, value) = line.split_once(' ').expect("name SP value");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn json_exposition_parses() {
        let r = Registry::new();
        r.counter("total").inc();
        r.histogram("lat_nanos").record(9);
        r.gauge_fn("ratio", || 0.5);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"total\": 1"), "{json}");
        assert!(json.contains("\"lat_nanos_p99\": 9"), "{json}");
        assert!(json.contains("\"ratio\": 0.500000"), "{json}");
    }
}
