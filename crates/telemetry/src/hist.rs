//! The log₂-bucketed [`LatencyHistogram`] and its mergeable
//! [`HistogramSnapshot`].
//!
//! Values (nanoseconds, by repo convention) land in power-of-two
//! buckets: bucket `i` covers `[2^i, 2^(i+1) - 1]` (bucket 0 also
//! takes zero, bucket 63 runs to `u64::MAX`). Recording is three
//! relaxed atomic operations on fixed arrays — no locks, no
//! allocation — so a histogram can sit inside the engine's
//! per-chunk classification path. Quantiles are read from a
//! snapshot: the reported `pNN` is the upper bound of the bucket
//! holding the NNth percentile, clamped to the exact observed
//! maximum, which makes `p50 ≤ p90 ≤ p99 ≤ max` an invariant rather
//! than a hope (`tests/histogram_props.rs` proves it).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: one per possible `floor(log2(v))` of a
/// non-zero `u64`, with zero folded into bucket 0.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: `floor(log2(v))`, with 0 → bucket 0.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros()) as usize
    }
}

/// Smallest value of bucket `i` (0 for bucket 0).
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    assert!(i < BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Largest value of bucket `i` (`u64::MAX` for the last bucket).
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    assert!(i < BUCKETS);
    if i == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A concurrent latency histogram: 64 log₂ buckets plus an exact sum
/// and an exact maximum.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one value. Allocation-free, lock-free: one `fetch_add`
    /// on the bucket, one on the sum, one `fetch_max`.
    // analysis: no_alloc
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`,
    /// which a latency never reaches).
    // analysis: no_alloc
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Reads the current state. Not a linearizable cut under
    /// concurrent recording (a racing `record` may be half-applied),
    /// which is fine for a scrape; once writers are quiescent the
    /// snapshot is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count())
            .field("max", &snap.max)
            .finish()
    }
}

/// A point-in-time copy of a histogram: plain integers, mergeable and
/// queryable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (`buckets[i]` counts values in
    /// `[bucket_lower_bound(i), bucket_upper_bound(i)]`).
    pub buckets: [u64; BUCKETS],
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot — the identity element of [`merge`](Self::merge).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    /// Combines two snapshots (e.g. per-worker histograms into one):
    /// bucket-wise and sum addition (wrapping, matching the wrapping
    /// `fetch_add` of [`LatencyHistogram::record`]), maximum of
    /// maxima. Associative and commutative with
    /// [`empty`](Self::empty) as identity, so any merge tree over the
    /// same snapshots agrees — and merging two snapshots equals one
    /// snapshot of the concatenated recordings.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (b, o) in out.buckets.iter_mut().zip(&other.buckets) {
            *b = b.wrapping_add(*o);
        }
        out.sum = out.sum.wrapping_add(other.sum);
        out.max = out.max.max(other.max);
        out
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket holding it, clamped to the exact observed maximum; 0
    /// when the histogram is empty. Because the clamp and the
    /// cumulative walk are both monotone in `q`, quantiles never
    /// invert: `quantile(a) <= quantile(b)` whenever `a <= b`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, at least 1.
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(b);
            if cumulative >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The median bucket bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th-percentile bucket bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th-percentile bucket bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of recorded values (0 when empty) — exact, from the sum.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS {
            assert!(bucket_lower_bound(i) <= bucket_upper_bound(i));
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            if i > 0 {
                assert_eq!(bucket_lower_bound(i), bucket_upper_bound(i - 1) + 1);
            }
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // The 50th observation is 50 (bucket [32,63] → bound 63).
        assert_eq!(s.p50(), 63);
        // The 90th observation is 90 (bucket [64,127] → clamped to 100).
        assert_eq!(s.p90(), 100);
        assert_eq!(s.p99(), 100);
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99() && s.p99() <= s.max);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_is_the_sum_of_parts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let all = LatencyHistogram::new();
        for v in [0u64, 1, 7, 1000, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 3, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        assert_eq!(
            merged.merge(&HistogramSnapshot::empty()),
            merged,
            "empty is the merge identity"
        );
    }

    #[test]
    fn record_duration_uses_nanos() {
        let h = LatencyHistogram::new();
        h.record_duration(std::time::Duration::from_micros(3));
        let s = h.snapshot();
        assert_eq!(s.sum, 3000);
        assert_eq!(s.max, 3000);
    }
}
