//! # facepoint-telemetry
//!
//! The metrics substrate for the facepoint service stack: lock-free
//! [`Counter`] / [`Gauge`] cells striped across cache lines, a
//! log₂-bucketed [`LatencyHistogram`] with mergeable snapshots and
//! p50/p90/p99/max readout, and a [`Registry`] that names every
//! instrument and renders a stable snapshot — as a Prometheus-style
//! `name value` text exposition (the `METRICS` opcode of
//! `docs/PROTOCOL.md`) or as one flat JSON object (the
//! `--metrics-interval` emitter of `facepoint serve`).
//!
//! Design constraints, in order:
//!
//! 1. **Recording is allocation-free and lock-free.** `Counter::add`,
//!    `Gauge::add` and `LatencyHistogram::record` are a handful of
//!    relaxed atomic RMWs on fixed-size arrays — they can sit on the
//!    engine's classification hot path without disturbing the
//!    CI-enforced flat-memory guarantee (`crates/engine/tests/memory.rs`
//!    and this crate's own `tests/zero_alloc.rs`).
//! 2. **Writers never share a cache line by default.** Counters and
//!    gauges stripe their cells per thread (first-touch stripe
//!    assignment, cache-line-aligned cells), so worker threads
//!    incrementing the same counter do not bounce one line around.
//! 3. **std only.** The offline build vendors no metrics crates; this
//!    is the subset the repo needs, not a general library.
//!
//! Reading (snapshot, quantiles, rendering) may allocate — scrapes are
//! rare and cold compared to recording.
//!
//! ```
//! use facepoint_telemetry::Registry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let requests = registry.counter("requests_total");
//! let latency = registry.histogram("request_nanos");
//! requests.inc();
//! latency.record(1_500);
//! let text = registry.render_text();
//! assert!(text.contains("requests_total 1\n"));
//! assert!(text.contains("request_nanos_count 1\n"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod cells;
mod hist;
mod registry;

pub use cells::{Counter, Gauge, STRIPES};
pub use hist::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, HistogramSnapshot, LatencyHistogram,
    BUCKETS,
};
pub use registry::{MetricValue, Registry};
