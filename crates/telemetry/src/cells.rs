//! Striped atomic cells: [`Counter`] and [`Gauge`].
//!
//! Both instruments spread their state over [`STRIPES`]
//! cache-line-aligned cells. A recording thread picks its stripe once
//! (a process-global round-robin, remembered in a thread-local) and
//! then only ever touches that cell — two worker threads bumping the
//! same counter write different cache lines, so the hot path costs one
//! uncontended relaxed RMW. Reads sum the stripes; they are
//! monotonic-per-stripe but not a linearizable cut, which is exactly
//! the contract a scrape needs.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Stripe count per instrument. A power of two a bit above typical
/// worker counts: enough that threads rarely share a stripe, small
/// enough that a snapshot sum stays trivial.
pub const STRIPES: usize = 16;

/// One cache line per cell so stripes never share one (64 B covers
/// x86-64 and the common aarch64 configurations).
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

#[repr(align(64))]
#[derive(Default)]
struct PaddedI64(AtomicI64);

/// This thread's stripe: assigned round-robin from a process-global
/// counter the first time the thread records anything, then cached in
/// a const-initialized thread-local (no lazy allocation, so recording
/// stays allocation-free even on a thread's first record).
fn stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            s.set(v);
        }
        v % STRIPES
    })
}

/// A monotonically increasing sum, striped across cache lines.
///
/// Use for totals: functions processed, bytes read, steals. Relaxed
/// ordering throughout — the value is a statistic, not a
/// synchronization edge.
#[derive(Default)]
pub struct Counter {
    cells: [PaddedU64; STRIPES],
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to this thread's stripe. Allocation-free, lock-free.
    // analysis: no_alloc
    pub fn add(&self, n: u64) {
        self.cells[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    // analysis: no_alloc
    pub fn inc(&self) {
        self.add(1);
    }

    /// The sum of all stripes.
    pub fn get(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A value that can go up and down, striped across cache lines.
///
/// Use for levels: open connections, queued chunks. Concurrent
/// [`add`](Gauge::add) / [`sub`](Gauge::sub) pairs from any threads
/// are safe; [`set`](Gauge::set) is for single-writer sampled gauges
/// (it rewrites every stripe and is not atomic as a whole).
#[derive(Default)]
pub struct Gauge {
    cells: [PaddedI64; STRIPES],
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds `n` to this thread's stripe. Allocation-free, lock-free.
    // analysis: no_alloc
    pub fn add(&self, n: i64) {
        self.cells[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from this thread's stripe.
    // analysis: no_alloc
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Overwrites the gauge with `v` (stripe 0 takes the value, the
    /// rest are zeroed). Only for gauges with a single sampling
    /// writer; a reader racing the rewrite can see a partial sum.
    pub fn set(&self, v: i64) {
        self.cells[0].0.store(v, Ordering::Relaxed);
        for c in &self.cells[1..] {
            c.0.store(0, Ordering::Relaxed);
        }
    }

    /// The sum of all stripes.
    pub fn get(&self) -> i64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0i64, i64::wrapping_add)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                    c.add(5);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8 * 1005);
    }

    #[test]
    fn gauge_add_sub_and_set() {
        let g = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        g.add(3);
                        g.sub(2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 800);
        g.set(-7);
        assert_eq!(g.get(), -7);
        g.set(42);
        assert_eq!(g.get(), 42);
    }
}
