//! Recording into telemetry instruments must be **allocation-free in
//! steady state** — the engine's flat-memory guarantee
//! (`crates/engine/tests/memory.rs`, CI-enforced at 10⁶ functions)
//! survives instrumentation only if `Counter::add`, `Gauge::add` and
//! `LatencyHistogram::record` never touch the heap.
//!
//! Same counting-allocator harness as the engine's memory test (the
//! shared `facepoint-testsupport` crate, where the audited `unsafe`
//! lives — it only delegates to `System` and keeps a byte counter; the
//! library crates themselves all `#![forbid(unsafe_code)]`).

use facepoint_telemetry::Registry;
use facepoint_testsupport::{live_bytes, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

// One #[test] on purpose: the byte counter is process-global, so a
// second test on a parallel harness thread would bleed its allocations
// into this one's measured window (the engine memory test documents
// the same constraint).
#[test]
fn recording_never_allocates() {
    // Setup allocates: registry map, instrument arcs, name strings.
    let registry = Registry::new();
    let counter = registry.counter("zero_alloc_total");
    let gauge = registry.gauge("zero_alloc_level");
    let hist = registry.histogram("zero_alloc_nanos");

    // Warm-up: claim this thread's stripe and fault everything in.
    counter.inc();
    gauge.add(1);
    gauge.sub(1);
    hist.record(1);
    hist.record_duration(std::time::Duration::from_nanos(1));

    // The measured window: a million records per instrument on the
    // main thread, with byte-exact flatness required — not "small
    // growth", zero.
    let baseline = live_bytes();
    for i in 0..1_000_000u64 {
        counter.add(i & 7);
        gauge.add(1);
        gauge.sub(1);
        hist.record(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    let growth = live_bytes() - baseline;
    assert_eq!(
        growth, 0,
        "recording allocated {growth} B over the measured window — \
         the hot path must stay off the heap"
    );

    // Fresh threads recording through the same instruments must also
    // stay flat once each has warmed its stripe. Two barriers bracket
    // the measured windows so every allocation (thread spawn, stack,
    // join bookkeeping) happens strictly outside them — inside the
    // bracket the only running code is recording, on every thread.
    let start = std::sync::Arc::new(std::sync::Barrier::new(5));
    let stop = std::sync::Arc::new(std::sync::Barrier::new(5));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let counter = registry.counter("zero_alloc_total");
            let hist = registry.histogram("zero_alloc_nanos");
            let (start, stop) = (std::sync::Arc::clone(&start), std::sync::Arc::clone(&stop));
            std::thread::spawn(move || {
                counter.inc(); // stripe warm-up
                hist.record(1);
                start.wait();
                let baseline = live_bytes();
                for i in 0..100_000u64 {
                    counter.inc();
                    hist.record(i << 3);
                }
                let growth = live_bytes() - baseline;
                stop.wait();
                growth
            })
        })
        .collect();
    start.wait();
    stop.wait();
    for h in handles {
        let growth = h.join().unwrap();
        assert_eq!(growth, 0, "a worker thread's recording window grew");
    }

    // Sanity: the data actually landed.
    let text = registry.render_text();
    assert!(
        text.contains("zero_alloc_nanos_count 1400006\n"),
        "unexpected exposition:\n{text}"
    );
}
