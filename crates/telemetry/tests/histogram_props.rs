//! Property tests for the log₂ latency histogram: bucket bounds
//! partition `u64`, merge is a commutative monoid on snapshots, and
//! quantiles are monotone in both the rank and the data.

use facepoint_telemetry::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, HistogramSnapshot, LatencyHistogram,
    BUCKETS,
};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in exactly the bucket whose bounds contain it.
    #[test]
    fn bucket_bounds_contain_their_values(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v);
        prop_assert!(v <= bucket_upper_bound(i));
        // The partition has no gaps or overlaps around v.
        if v > 0 && bucket_lower_bound(i) == v && i > 0 {
            prop_assert_eq!(bucket_upper_bound(i - 1), v - 1);
        }
    }

    /// A snapshot is an exact accounting: count, sum and max match the
    /// recorded values.
    #[test]
    fn snapshot_is_exact(values in proptest::collection::vec(0u64..(1u64 << 40), 0..200)) {
        let s = snapshot_of(&values);
        prop_assert_eq!(s.count(), values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.max, values.iter().copied().max().unwrap_or(0));
    }

    /// Merge is commutative, associative, has `empty()` as identity,
    /// and equals recording the concatenation.
    #[test]
    fn merge_is_a_commutative_monoid(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
        c in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        prop_assert_eq!(sa.merge(&HistogramSnapshot::empty()), sa);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(sa.merge(&sb), snapshot_of(&all));
    }

    /// Quantiles never invert: monotone in the rank, bounded by the
    /// exact max, and at least the true value's bucket lower bound.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        q1_ppm in 0u64..=1_000_000,
        q2_ppm in 0u64..=1_000_000,
    ) {
        let (q1, q2) = (q1_ppm as f64 / 1e6, q2_ppm as f64 / 1e6);
        let s = snapshot_of(&values);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(s.quantile(lo) <= s.quantile(hi), "q{lo} > q{hi}");
        prop_assert!(s.p50() <= s.p90());
        prop_assert!(s.p90() <= s.p99());
        prop_assert!(s.p99() <= s.max);
        prop_assert_eq!(s.quantile(1.0), s.max);
        // The bucket bound over-reports by at most 2x (next power of
        // two), modulo the clamp to max: check against the true
        // quantile's bucket.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let true_p50 = sorted[(values.len() - 1) / 2];
        prop_assert!(s.p50() >= bucket_lower_bound(bucket_index(true_p50)));
    }

    /// Merging never lowers a quantile below either input's and never
    /// raises it above both inputs' p-bounds' max.
    #[test]
    fn merged_quantiles_stay_within_inputs(
        a in proptest::collection::vec(any::<u64>(), 1..100),
        b in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let m = sa.merge(&sb);
        prop_assert!(m.max >= sa.max.max(sb.max));
        for q in [0.5, 0.9, 0.99] {
            let merged = m.quantile(q);
            prop_assert!(merged <= m.max);
            prop_assert!(merged >= sa.quantile(q).min(sb.quantile(q)));
        }
    }
}
