//! Ordered sensitivity-distance vectors (`OSDV`) —
//! Definitions 9 and 10 of the paper.
//!
//! `OSDV(f)` refines the sensitivity vector with *geometry*: for every
//! sensitivity level `s` it histograms the Hamming distances of all
//! unordered pairs of minterms that share that local sensitivity.
//! `OSDV1`/`OSDV0` restrict the pairs to 1-/0-minterms.
//!
//! Two engines compute the pair histograms and are differential-tested
//! against each other:
//!
//! * [`OsdvEngine::Pairwise`] — group minterms by sensitivity, histogram
//!   `popcount(X ⊕ Y)` over every in-group pair: `O(Σ|G|²)`, excellent for
//!   sparse groups;
//! * [`OsdvEngine::Wht`] — per group, a Walsh–Hadamard XOR
//!   autocorrelation gives the count of pairs at every XOR difference in
//!   `O(n·2^n)` regardless of group size.
//!
//! [`OsdvEngine::Auto`] (the default) picks per group based on the group
//! population.

use crate::sensitivity::SensitivityProfile;
use crate::spectral::xor_autocorrelation_into;
use facepoint_truth::words::WORD_VARS;
use facepoint_truth::TruthTable;
use std::fmt;

/// Reusable scratch buffers for [`osdv_rows_into`] — owning these lets
/// the signature kernel compute OSDVs with zero steady-state heap
/// allocations.
#[derive(Debug, Default, Clone)]
pub struct OsdvScratch {
    /// Bit-packed indicator of the current sensitivity group.
    group: Vec<u64>,
    /// Unfiltered indicator, shared by both polarity groups in the
    /// fused sweep.
    ind: Vec<u64>,
    /// Expanded member list for the pairwise engine.
    members: Vec<u64>,
    /// Walsh–Hadamard workspace for the WHT engine.
    wht: Vec<i64>,
}

/// Strategy for counting equal-sensitivity minterm pairs by distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OsdvEngine {
    /// Always enumerate pairs inside each sensitivity group.
    Pairwise,
    /// Always use the Walsh–Hadamard autocorrelation.
    Wht,
    /// Choose per group: pairwise when `|G|² < n·2^n`, WHT otherwise.
    #[default]
    Auto,
}

/// Which minterms participate in the pair counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MintermFilter {
    /// All `2^n` minterms — the paper's `OSDV`.
    All,
    /// Only minterms with `f(X) = 0` — the paper's `OSDV0`.
    Zeros,
    /// Only minterms with `f(X) = 1` — the paper's `OSDV1`.
    Ones,
}

/// The ordered sensitivity-distance vector: a `(n+1) × n` matrix `δ` where
/// `δ[s][j-1]` counts unordered minterm pairs `(X, Y)`, `X < Y`, with
/// `sen(f,X) = sen(f,Y) = s` and Hamming distance `j`.
///
/// The paper flattens the matrix row-major as
/// `(σ_0, σ_1, …, σ_n)`, `σ_s = (δ_{s1}, …, δ_{sn})`; [`Osdv::flatten`]
/// and the `Display` impl reproduce that order.
///
/// # Examples
///
/// ```
/// use facepoint_sig::{osdv1, Osdv};
/// use facepoint_truth::TruthTable;
///
/// // Table I: OSDV1 of the 3-majority is (0,0,0, 0,0,0, 0,3,0, 0,0,0).
/// let v = osdv1(&TruthTable::majority(3));
/// assert_eq!(v.flatten(), vec![0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Osdv {
    num_vars: usize,
    /// Row-major `(n+1) × n`: entry `s * n + (j - 1)`.
    rows: Vec<u64>,
}

impl Osdv {
    /// Number of variables of the underlying function.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The pair count `δ_{sj}` for sensitivity `s` and distance `j ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `s > n` or `j` is not in `1..=n`.
    pub fn delta(&self, s: u32, j: u32) -> u64 {
        let n = self.num_vars;
        assert!((s as usize) <= n, "sensitivity {s} out of range");
        assert!(j >= 1 && (j as usize) <= n, "distance {j} out of range");
        self.rows[s as usize * n + (j as usize - 1)]
    }

    /// Row `σ_s`: the distance histogram of sensitivity level `s`.
    pub fn sigma(&self, s: u32) -> &[u64] {
        let n = self.num_vars;
        &self.rows[s as usize * n..(s as usize + 1) * n]
    }

    /// The row-major flattening `(σ_0, …, σ_n)` used by the paper's
    /// Table I and by MSV construction.
    pub fn flatten(&self) -> Vec<u64> {
        self.rows.clone()
    }

    /// Total number of counted pairs, `Σ_{s,j} δ_{sj}`.
    pub fn total_pairs(&self) -> u64 {
        self.rows.iter().sum()
    }
}

impl fmt::Display for Osdv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Computes an OSDV variant with full control over filter and engine.
///
/// [`osdv`], [`osdv0`] and [`osdv1`] are the common shorthands.
pub fn osdv_with(f: &TruthTable, filter: MintermFilter, engine: OsdvEngine) -> Osdv {
    let profile = SensitivityProfile::compute(f);
    osdv_from_profile(f, &profile, filter, engine)
}

/// Computes an OSDV variant reusing an already-computed sensitivity
/// profile (the classifier computes OSV and OSDV from one profile, as in
/// Algorithm 1 line 5).
pub fn osdv_from_profile(
    f: &TruthTable,
    profile: &SensitivityProfile,
    filter: MintermFilter,
    engine: OsdvEngine,
) -> Osdv {
    let mut rows = Vec::new();
    let mut scratch = OsdvScratch::default();
    osdv_rows_into(f, profile, filter, engine, &mut scratch, &mut rows);
    Osdv {
        num_vars: f.num_vars(),
        rows,
    }
}

/// Writes the row-major `(n+1) × n` OSDV matrix into `rows`, reusing
/// both the output and the `scratch` buffers — the allocation-free core
/// of [`osdv_from_profile`]. For `n = 0` the output is empty.
pub fn osdv_rows_into(
    f: &TruthTable,
    profile: &SensitivityProfile,
    filter: MintermFilter,
    engine: OsdvEngine,
    scratch: &mut OsdvScratch,
    rows: &mut Vec<u64>,
) {
    let n = f.num_vars();
    rows.clear();
    if n == 0 {
        return;
    }
    rows.resize((n + 1) * n, 0);
    for s in 0..=n as u32 {
        profile.indicator_into(s, &mut scratch.group);
        match filter {
            MintermFilter::All => {}
            MintermFilter::Zeros => {
                for (g, fw) in scratch.group.iter_mut().zip(f.words()) {
                    *g &= !fw;
                }
            }
            MintermFilter::Ones => {
                for (g, fw) in scratch.group.iter_mut().zip(f.words()) {
                    *g &= fw;
                }
            }
        }
        let pop: u64 = scratch.group.iter().map(|w| w.count_ones() as u64).sum();
        if pop < 2 {
            continue;
        }
        let use_pairwise = match engine {
            OsdvEngine::Pairwise => true,
            OsdvEngine::Wht => false,
            OsdvEngine::Auto => pop * pop < (n as u64) << n,
        };
        let row = &mut rows[s as usize * n..(s as usize + 1) * n];
        if use_pairwise {
            count_pairs_naive(&scratch.group, row, &mut scratch.members);
        } else {
            count_pairs_wht(&scratch.group, n, row, &mut scratch.wht);
        }
    }
}

/// Computes the four point-characteristic sections of the MSV in one
/// sweep: the `OSDV0`/`OSDV1` row matrices into `rows0`/`rows1` and the
/// `OSV0`/`OSV1` histograms into `h0`/`h1`.
///
/// Per sensitivity level the indicator is built **once** and split into
/// its 0-/1-minterm halves, whose popcounts are the histogram entries
/// and whose pair counts fill the rows — versus three independent
/// indicator sweeps when the histograms and the two filtered OSDVs are
/// computed separately. All outputs and scratch reuse their
/// allocations.
// Four output buffers plus scratch is the point of the API: every
// consumer owns them all and reuses them across a stream.
#[allow(clippy::too_many_arguments)]
pub fn osdv_point_sections_into(
    f: &TruthTable,
    profile: &SensitivityProfile,
    engine: OsdvEngine,
    scratch: &mut OsdvScratch,
    rows0: &mut Vec<u64>,
    rows1: &mut Vec<u64>,
    h0: &mut Vec<u64>,
    h1: &mut Vec<u64>,
) {
    let n = f.num_vars();
    rows0.clear();
    rows1.clear();
    h0.clear();
    h1.clear();
    rows0.resize((n + 1) * n, 0);
    rows1.resize((n + 1) * n, 0);
    for s in 0..=n as u32 {
        profile.indicator_into(s, &mut scratch.ind);
        for (value, rows, hist) in [
            (false, &mut *rows0, &mut *h0),
            (true, &mut *rows1, &mut *h1),
        ] {
            scratch.group.clear();
            scratch
                .group
                .extend(scratch.ind.iter().zip(f.words()).map(|(&iw, &fw)| {
                    if value {
                        iw & fw
                    } else {
                        iw & !fw
                    }
                }));
            let pop: u64 = scratch.group.iter().map(|w| w.count_ones() as u64).sum();
            hist.push(pop);
            if n == 0 || pop < 2 {
                continue;
            }
            let use_pairwise = match engine {
                OsdvEngine::Pairwise => true,
                OsdvEngine::Wht => false,
                OsdvEngine::Auto => pop * pop < (n as u64) << n,
            };
            let row = &mut rows[s as usize * n..(s as usize + 1) * n];
            if use_pairwise {
                count_pairs_naive(&scratch.group, row, &mut scratch.members);
            } else {
                count_pairs_wht(&scratch.group, n, row, &mut scratch.wht);
            }
        }
    }
}

/// `OSDV(f)`: pair counts over all minterms (default engine).
pub fn osdv(f: &TruthTable) -> Osdv {
    osdv_with(f, MintermFilter::All, OsdvEngine::Auto)
}

/// `OSDV0(f)`: pair counts over the 0-minterms (default engine).
pub fn osdv0(f: &TruthTable) -> Osdv {
    osdv_with(f, MintermFilter::Zeros, OsdvEngine::Auto)
}

/// `OSDV1(f)`: pair counts over the 1-minterms (default engine).
pub fn osdv1(f: &TruthTable) -> Osdv {
    osdv_with(f, MintermFilter::Ones, OsdvEngine::Auto)
}

fn count_pairs_naive(group: &[u64], row: &mut [u64], members: &mut Vec<u64>) {
    members.clear();
    for (w, &word) in group.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            members.push(((w as u64) << WORD_VARS) | bits.trailing_zeros() as u64);
            bits &= bits - 1;
        }
    }
    for (a, &x) in members.iter().enumerate() {
        for &y in &members[a + 1..] {
            let d = (x ^ y).count_ones() as usize;
            row[d - 1] += 1;
        }
    }
}

fn count_pairs_wht(group: &[u64], num_vars: usize, row: &mut [u64], wht: &mut Vec<i64>) {
    xor_autocorrelation_into(group, num_vars, wht);
    for (d, &cnt) in wht.iter().enumerate().skip(1) {
        debug_assert!(cnt >= 0 && cnt % 2 == 0, "ordered pair counts are even");
        let j = (d as u64).count_ones() as usize;
        row[j - 1] += (cnt / 2) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table1_majority_osdv1() {
        let f1 = TruthTable::majority(3);
        let v = osdv1(&f1);
        assert_eq!(v.flatten(), vec![0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0]);
        assert_eq!(v.delta(2, 2), 3);
    }

    #[test]
    fn table1_majority_osdv() {
        let f1 = TruthTable::majority(3);
        let v = osdv(&f1);
        assert_eq!(v.flatten(), vec![0, 0, 1, 0, 0, 0, 6, 6, 3, 0, 0, 0]);
    }

    #[test]
    fn table1_projection_osdv1_and_osdv() {
        let f3 = TruthTable::projection(3, 2).unwrap();
        assert_eq!(
            osdv1(&f3).flatten(),
            vec![0, 0, 0, 4, 2, 0, 0, 0, 0, 0, 0, 0]
        );
        assert_eq!(
            osdv(&f3).flatten(),
            vec![0, 0, 0, 12, 12, 4, 0, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn engines_agree() {
        let mut rng = StdRng::seed_from_u64(53);
        for n in 1..=8usize {
            for _ in 0..4 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                for filter in [
                    MintermFilter::All,
                    MintermFilter::Zeros,
                    MintermFilter::Ones,
                ] {
                    let a = osdv_with(&f, filter, OsdvEngine::Pairwise);
                    let b = osdv_with(&f, filter, OsdvEngine::Wht);
                    assert_eq!(a, b, "n = {n}, filter = {filter:?}, f = {f}");
                }
            }
        }
    }

    #[test]
    fn fused_point_sections_match_separate_computation() {
        let mut rng = StdRng::seed_from_u64(0xF05E);
        let mut scratch = OsdvScratch::default();
        let (mut r0, mut r1, mut h0, mut h1) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for n in 0..=7usize {
            for _ in 0..4 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let prof = SensitivityProfile::compute(&f);
                osdv_point_sections_into(
                    &f,
                    &prof,
                    OsdvEngine::Auto,
                    &mut scratch,
                    &mut r0,
                    &mut r1,
                    &mut h0,
                    &mut h1,
                );
                let d0 = osdv_from_profile(&f, &prof, MintermFilter::Zeros, OsdvEngine::Auto);
                let d1 = osdv_from_profile(&f, &prof, MintermFilter::Ones, OsdvEngine::Auto);
                let (e0, e1) = prof.histograms_by_value(&f);
                assert_eq!(r0, d0.flatten(), "rows0, n = {n}, f = {f}");
                assert_eq!(r1, d1.flatten(), "rows1, n = {n}, f = {f}");
                assert_eq!(h0, e0, "h0, n = {n}, f = {f}");
                assert_eq!(h1, e1, "h1, n = {n}, f = {f}");
            }
        }
    }

    #[test]
    fn row_sums_are_group_pair_counts() {
        let mut rng = StdRng::seed_from_u64(59);
        let f = TruthTable::random(6, &mut rng).unwrap();
        let prof = SensitivityProfile::compute(&f);
        let hist = prof.histogram();
        let v = osdv(&f);
        for s in 0..=6u32 {
            let g = hist[s as usize];
            let expect = g * g.saturating_sub(1) / 2;
            assert_eq!(v.sigma(s).iter().sum::<u64>(), expect, "σ_{s} row sum");
        }
    }

    #[test]
    fn zero_vars_osdv_is_empty() {
        let f = TruthTable::one(0).unwrap();
        let v = osdv(&f);
        assert_eq!(v.flatten(), Vec::<u64>::new());
        assert_eq!(v.total_pairs(), 0);
    }

    #[test]
    fn display_matches_paper_format() {
        let v = osdv1(&TruthTable::majority(3));
        assert_eq!(format!("{v}"), "(0,0,0,0,0,0,0,3,0,0,0,0)");
    }

    #[test]
    fn split_vectors_partition_when_phases_fixed() {
        // Pairs of OSDV are NOT a partition of OSDV (cross-value pairs with
        // equal sensitivity exist), but each split total is bounded by the
        // full total.
        let f = TruthTable::from_hex(4, "3c5a").unwrap();
        let all = osdv(&f).total_pairs();
        let zeros = osdv0(&f).total_pairs();
        let ones = osdv1(&f).total_pairs();
        assert!(zeros + ones <= all);
    }
}
