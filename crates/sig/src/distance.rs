//! Ordered sensitivity-distance vectors (`OSDV`) —
//! Definitions 9 and 10 of the paper.
//!
//! `OSDV(f)` refines the sensitivity vector with *geometry*: for every
//! sensitivity level `s` it histograms the Hamming distances of all
//! unordered pairs of minterms that share that local sensitivity.
//! `OSDV1`/`OSDV0` restrict the pairs to 1-/0-minterms.
//!
//! Two engines compute the pair histograms and are differential-tested
//! against each other:
//!
//! * [`OsdvEngine::Pairwise`] — group minterms by sensitivity, histogram
//!   `popcount(X ⊕ Y)` over every in-group pair: `O(Σ|G|²)`, excellent for
//!   sparse groups;
//! * [`OsdvEngine::Wht`] — per group, a Walsh–Hadamard spectral pass
//!   gives the count of pairs at every distance in `O(n·2^n)` regardless
//!   of group size.
//!
//! [`OsdvEngine::Auto`] (the default) picks per group based on the group
//! population.
//!
//! The spectral engine itself comes in two forms. [`osdv_rows_into`]
//! keeps the classic two-transform XOR autocorrelation
//! (`WHT(WHT(a)²)/2^n`, then bin the `2^n` differences by popcount) —
//! it is the frozen reference tail that [`crate::msv_reference`]
//! benchmarks against. The kernel's fused sweep
//! ([`osdv_point_sections_into`]) and the bit-sliced batch path use a
//! **single-transform, weight-binned** tail instead: with `W = WHT(a)`
//! and the per-weight energies `E_w = Σ_{|s|=w} W[s]²`, the distance
//! histogram is `δ_j = (Σ_w K_j(w)·E_w) / 2^{n+1}` where `K_j` are the
//! binary Krawtchouk polynomials. That removes the inverse transform,
//! the squaring pass, and the difference binning; and because the two
//! polarity groups of a level partition its minterms, the level
//! indicator's transform `S` is shared: `WHT(g0) = S − WHT(g1)`, one
//! subtraction inside the energy pass instead of a second butterfly
//! cascade over a freshly encoded group.

use crate::sensitivity::SensitivityProfile;
use crate::spectral::{wht_in_place, xor_autocorrelation_into};
use facepoint_truth::words::WORD_VARS;
use facepoint_truth::TruthTable;
use std::fmt;

/// Divisor applied to the classic `n·2^n` crossover to get the
/// [`OsdvEngine::Auto`] threshold of the single-transform spectral tail
/// ([`auto_crossover`]). The weight-binned tail runs one butterfly
/// cascade where the autocorrelation runs two plus a squaring pass, so
/// it breaks even against pairwise counting at roughly half the group
/// population product; the value is pinned by a unit test and was
/// re-tuned against the batched kernel on the `trajectory` workload.
pub const AUTO_SPECTRAL_DIVISOR: u64 = 2;

/// The [`OsdvEngine::Auto`] crossover of the single-transform spectral
/// tail: a group of population `p` is counted spectrally when
/// `p² ≥ auto_crossover(n)`, pairwise otherwise.
pub const fn auto_crossover(num_vars: usize) -> u64 {
    classic_crossover(num_vars) / AUTO_SPECTRAL_DIVISOR
}

/// The [`OsdvEngine::Auto`] crossover of the classic two-transform
/// autocorrelation tail used by [`osdv_rows_into`]: pairwise while
/// `p² < n·2^n`, the autocorrelation's operation count.
pub const fn classic_crossover(num_vars: usize) -> u64 {
    (num_vars as u64) << num_vars
}

/// Reusable scratch buffers for [`osdv_rows_into`] — owning these lets
/// the signature kernel compute OSDVs with zero steady-state heap
/// allocations.
#[derive(Debug, Default, Clone)]
pub struct OsdvScratch {
    /// Bit-packed indicator of the current sensitivity group.
    group: Vec<u64>,
    /// Bit-packed indicator of the 1-polarity group in the fused sweep
    /// (`group` then holds the 0-polarity half).
    group1: Vec<u64>,
    /// Unfiltered indicator, shared by both polarity groups in the
    /// fused sweep.
    ind: Vec<u64>,
    /// Expanded member list for the pairwise engine.
    pub(crate) members: Vec<u64>,
    /// Walsh–Hadamard workspace for the classic autocorrelation engine.
    wht: Vec<i64>,
    /// Workspace of the single-transform weight-binned spectral tail.
    pub(crate) tail: SpectralTail,
}

/// Scratch of the weight-binned spectral pair counter: transform
/// buffers, per-weight energies, and the cached Krawtchouk table.
#[derive(Debug, Default, Clone)]
pub(crate) struct SpectralTail {
    /// Transform buffer for a single group (holds `WHT(g1)` on the
    /// shared path).
    buf: Vec<i64>,
    /// Transform buffer of the level indicator on the shared path.
    buf_level: Vec<i64>,
    /// Per-weight spectral energies of the 0-polarity group.
    e0: Vec<i64>,
    /// Per-weight spectral energies of the 1-polarity group.
    e1: Vec<i64>,
    /// Row-major `(n+1) × (n+1)` Krawtchouk table `K_j(w)`.
    kraw: Vec<i64>,
    /// Arity the cached table was built for.
    kraw_n: Option<usize>,
}

/// Strategy for counting equal-sensitivity minterm pairs by distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OsdvEngine {
    /// Always enumerate pairs inside each sensitivity group.
    Pairwise,
    /// Always use the Walsh–Hadamard spectral counter.
    Wht,
    /// Choose per group by population: pairwise below the tail's
    /// crossover ([`classic_crossover`] for [`osdv_rows_into`],
    /// [`auto_crossover`] for the fused/batched weight-binned tail),
    /// spectral otherwise.
    #[default]
    Auto,
}

/// Which minterms participate in the pair counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MintermFilter {
    /// All `2^n` minterms — the paper's `OSDV`.
    All,
    /// Only minterms with `f(X) = 0` — the paper's `OSDV0`.
    Zeros,
    /// Only minterms with `f(X) = 1` — the paper's `OSDV1`.
    Ones,
}

/// The ordered sensitivity-distance vector: a `(n+1) × n` matrix `δ` where
/// `δ[s][j-1]` counts unordered minterm pairs `(X, Y)`, `X < Y`, with
/// `sen(f,X) = sen(f,Y) = s` and Hamming distance `j`.
///
/// The paper flattens the matrix row-major as
/// `(σ_0, σ_1, …, σ_n)`, `σ_s = (δ_{s1}, …, δ_{sn})`; [`Osdv::flatten`]
/// and the `Display` impl reproduce that order.
///
/// # Examples
///
/// ```
/// use facepoint_sig::{osdv1, Osdv};
/// use facepoint_truth::TruthTable;
///
/// // Table I: OSDV1 of the 3-majority is (0,0,0, 0,0,0, 0,3,0, 0,0,0).
/// let v = osdv1(&TruthTable::majority(3));
/// assert_eq!(v.flatten(), vec![0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Osdv {
    num_vars: usize,
    /// Row-major `(n+1) × n`: entry `s * n + (j - 1)`.
    rows: Vec<u64>,
}

impl Osdv {
    /// Number of variables of the underlying function.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The pair count `δ_{sj}` for sensitivity `s` and distance `j ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `s > n` or `j` is not in `1..=n`.
    pub fn delta(&self, s: u32, j: u32) -> u64 {
        let n = self.num_vars;
        assert!((s as usize) <= n, "sensitivity {s} out of range");
        assert!(j >= 1 && (j as usize) <= n, "distance {j} out of range");
        self.rows[s as usize * n + (j as usize - 1)]
    }

    /// Row `σ_s`: the distance histogram of sensitivity level `s`.
    pub fn sigma(&self, s: u32) -> &[u64] {
        let n = self.num_vars;
        &self.rows[s as usize * n..(s as usize + 1) * n]
    }

    /// The row-major flattening `(σ_0, …, σ_n)` used by the paper's
    /// Table I and by MSV construction.
    pub fn flatten(&self) -> Vec<u64> {
        self.rows.clone()
    }

    /// Total number of counted pairs, `Σ_{s,j} δ_{sj}`.
    pub fn total_pairs(&self) -> u64 {
        self.rows.iter().sum()
    }
}

impl fmt::Display for Osdv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Computes an OSDV variant with full control over filter and engine.
///
/// [`osdv`], [`osdv0`] and [`osdv1`] are the common shorthands.
pub fn osdv_with(f: &TruthTable, filter: MintermFilter, engine: OsdvEngine) -> Osdv {
    let profile = SensitivityProfile::compute(f);
    osdv_from_profile(f, &profile, filter, engine)
}

/// Computes an OSDV variant reusing an already-computed sensitivity
/// profile (the classifier computes OSV and OSDV from one profile, as in
/// Algorithm 1 line 5).
pub fn osdv_from_profile(
    f: &TruthTable,
    profile: &SensitivityProfile,
    filter: MintermFilter,
    engine: OsdvEngine,
) -> Osdv {
    let mut rows = Vec::new();
    let mut scratch = OsdvScratch::default();
    osdv_rows_into(f, profile, filter, engine, &mut scratch, &mut rows);
    Osdv {
        num_vars: f.num_vars(),
        rows,
    }
}

/// Writes the row-major `(n+1) × n` OSDV matrix into `rows`, reusing
/// both the output and the `scratch` buffers — the allocation-free core
/// of [`osdv_from_profile`]. For `n = 0` the output is empty.
pub fn osdv_rows_into(
    f: &TruthTable,
    profile: &SensitivityProfile,
    filter: MintermFilter,
    engine: OsdvEngine,
    scratch: &mut OsdvScratch,
    rows: &mut Vec<u64>,
) {
    let n = f.num_vars();
    rows.clear();
    if n == 0 {
        return;
    }
    rows.resize((n + 1) * n, 0);
    for s in 0..=n as u32 {
        profile.indicator_into(s, &mut scratch.group);
        match filter {
            MintermFilter::All => {}
            MintermFilter::Zeros => {
                for (g, fw) in scratch.group.iter_mut().zip(f.words()) {
                    *g &= !fw;
                }
            }
            MintermFilter::Ones => {
                for (g, fw) in scratch.group.iter_mut().zip(f.words()) {
                    *g &= fw;
                }
            }
        }
        let pop: u64 = scratch.group.iter().map(|w| w.count_ones() as u64).sum();
        if pop < 2 {
            continue;
        }
        let use_pairwise = match engine {
            OsdvEngine::Pairwise => true,
            OsdvEngine::Wht => false,
            OsdvEngine::Auto => pop * pop < classic_crossover(n),
        };
        let row = &mut rows[s as usize * n..(s as usize + 1) * n];
        if use_pairwise {
            count_pairs_naive(&scratch.group, row, &mut scratch.members);
        } else {
            count_pairs_wht(&scratch.group, n, row, &mut scratch.wht);
        }
    }
}

/// Computes the four point-characteristic sections of the MSV in one
/// sweep: the `OSDV0`/`OSDV1` row matrices into `rows0`/`rows1` and the
/// `OSV0`/`OSV1` histograms into `h0`/`h1`.
///
/// Per sensitivity level the indicator is built **once** and split into
/// its 0-/1-minterm halves, whose popcounts are the histogram entries
/// and whose pair counts fill the rows — versus three independent
/// indicator sweeps when the histograms and the two filtered OSDVs are
/// computed separately. Pair counting goes through the weight-binned
/// spectral tail ([`count_level_pairs`]), which shares the level
/// indicator's transform across the two polarity groups. All outputs
/// and scratch reuse their allocations.
// Four output buffers plus scratch is the point of the API: every
// consumer owns them all and reuses them across a stream.
#[allow(clippy::too_many_arguments)]
pub fn osdv_point_sections_into(
    f: &TruthTable,
    profile: &SensitivityProfile,
    engine: OsdvEngine,
    scratch: &mut OsdvScratch,
    rows0: &mut Vec<u64>,
    rows1: &mut Vec<u64>,
    h0: &mut Vec<u64>,
    h1: &mut Vec<u64>,
) {
    let n = f.num_vars();
    rows0.clear();
    rows1.clear();
    h0.clear();
    h1.clear();
    rows0.resize((n + 1) * n, 0);
    rows1.resize((n + 1) * n, 0);
    for s in 0..=n as u32 {
        profile.indicator_into(s, &mut scratch.ind);
        scratch.group.clear();
        scratch.group1.clear();
        for (&iw, &fw) in scratch.ind.iter().zip(f.words()) {
            scratch.group.push(iw & !fw);
            scratch.group1.push(iw & fw);
        }
        let pop0: u64 = scratch.group.iter().map(|w| w.count_ones() as u64).sum();
        let pop1: u64 = scratch.group1.iter().map(|w| w.count_ones() as u64).sum();
        h0.push(pop0);
        h1.push(pop1);
        if n == 0 {
            continue;
        }
        count_level_pairs(
            n,
            engine,
            &scratch.group,
            pop0,
            &scratch.group1,
            pop1,
            &mut scratch.members,
            &mut scratch.tail,
            &mut rows0[s as usize * n..(s as usize + 1) * n],
            &mut rows1[s as usize * n..(s as usize + 1) * n],
        );
    }
}

/// Distance-histograms the two polarity groups of one sensitivity level
/// into `row0`/`row1` — the level-granular engine dispatcher shared by
/// the fused scalar sweep and the bit-sliced batch path.
///
/// When both groups clear the spectral crossover they share one
/// transform: `S = WHT(g0 ∪ g1)` and `B = WHT(g1)` are computed, and
/// `WHT(g0) = S − B` falls out as a subtraction fused into the energy
/// pass, so the level costs two butterfly cascades where independent
/// autocorrelations cost four.
#[allow(clippy::too_many_arguments)]
pub(crate) fn count_level_pairs(
    num_vars: usize,
    engine: OsdvEngine,
    g0: &[u64],
    pop0: u64,
    g1: &[u64],
    pop1: u64,
    members: &mut Vec<u64>,
    tail: &mut SpectralTail,
    row0: &mut [u64],
    row1: &mut [u64],
) {
    let spectral = |pop: u64| match engine {
        OsdvEngine::Pairwise => false,
        OsdvEngine::Wht => true,
        OsdvEngine::Auto => pop * pop >= auto_crossover(num_vars),
    };
    let s0 = pop0 >= 2 && spectral(pop0);
    let s1 = pop1 >= 2 && spectral(pop1);
    if s0 && s1 {
        level_pairs_spectral(g0, g1, num_vars, tail, row0, row1);
        return;
    }
    if pop0 >= 2 {
        if s0 {
            count_pairs_spectral(g0, num_vars, tail, row0);
        } else {
            count_pairs_naive(g0, row0, members);
        }
    }
    if pop1 >= 2 {
        if s1 {
            count_pairs_spectral(g1, num_vars, tail, row1);
        } else {
            count_pairs_naive(g1, row1, members);
        }
    }
}

/// ±0/1-encodes the first `len` bits of a packed indicator into `out`.
fn encode_bits_into(words: &[u64], len: usize, out: &mut Vec<i64>) {
    out.clear();
    out.resize(len, 0);
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = ((words[i >> 6] >> (i & 63)) & 1) as i64;
    }
}

/// Encodes the union of two disjoint packed indicators into `out`.
fn encode_union_into(a: &[u64], b: &[u64], len: usize, out: &mut Vec<i64>) {
    out.clear();
    out.resize(len, 0);
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = (((a[i >> 6] | b[i >> 6]) >> (i & 63)) & 1) as i64;
    }
}

/// Rebuilds the cached Krawtchouk table for arity `n` if needed:
/// `K_j(w)` row-major over `j, w ∈ 0..=n`, via the three-term recurrence
/// `(j+1)·K_{j+1}(w) = (n−2w)·K_j(w) − (n−j+1)·K_{j−1}(w)` (exact
/// integer division).
fn ensure_krawtchouk(tail: &mut SpectralTail, n: usize) {
    if tail.kraw_n == Some(n) {
        return;
    }
    let w1 = n + 1;
    tail.kraw.clear();
    tail.kraw.resize(w1 * w1, 0);
    for w in 0..=n {
        tail.kraw[w] = 1;
        if n >= 1 {
            tail.kraw[w1 + w] = n as i64 - 2 * w as i64;
        }
        for j in 1..n {
            let num = (n as i64 - 2 * w as i64) * tail.kraw[j * w1 + w]
                - (n as i64 - j as i64 + 1) * tail.kraw[(j - 1) * w1 + w];
            debug_assert_eq!(num % (j as i64 + 1), 0, "Krawtchouk recurrence is exact");
            tail.kraw[(j + 1) * w1 + w] = num / (j as i64 + 1);
        }
    }
    tail.kraw_n = Some(n);
}

/// Converts per-weight spectral energies into unordered pair counts per
/// distance: `row[j−1] += (Σ_w K_j(w)·E_w) / 2^{n+1}`.
///
/// The `1/2^n` is the inverse transform's normalization folded into the
/// weight sum (Σ over a distance shell of the autocorrelation equals
/// the Krawtchouk-weighted energy sum), the extra `1/2` turns ordered
/// pairs into unordered ones.
fn krawtchouk_rows(kraw: &[i64], num_vars: usize, energy: &[i64], row: &mut [u64]) {
    let denom = 2i64 << num_vars;
    for j in 1..=num_vars {
        let mut t = 0i64;
        for (w, &e) in energy.iter().enumerate() {
            t += kraw[j * (num_vars + 1) + w] * e;
        }
        debug_assert!(
            t >= 0 && t % denom == 0,
            "weight-binned pair sums are even multiples of 2^n"
        );
        row[j - 1] += (t / denom) as u64;
    }
}

/// Single-group weight-binned spectral pair count: one forward WHT, an
/// energy-per-weight pass, and the Krawtchouk combine.
fn count_pairs_spectral(group: &[u64], num_vars: usize, tail: &mut SpectralTail, row: &mut [u64]) {
    let len = 1usize << num_vars;
    ensure_krawtchouk(tail, num_vars);
    encode_bits_into(group, len, &mut tail.buf);
    wht_in_place(&mut tail.buf);
    tail.e0.clear();
    tail.e0.resize(num_vars + 1, 0);
    for (s, &w) in tail.buf.iter().enumerate() {
        tail.e0[(s as u32).count_ones() as usize] += w * w;
    }
    krawtchouk_rows(&tail.kraw, num_vars, &tail.e0, row);
}

/// Two-group spectral pair count sharing the level-indicator transform:
/// `S = WHT(g0 ∪ g1)`, `B = WHT(g1)`, `A = S − B` inside the fused
/// energy pass (one popcount per spectral position serves both groups).
fn level_pairs_spectral(
    g0: &[u64],
    g1: &[u64],
    num_vars: usize,
    tail: &mut SpectralTail,
    row0: &mut [u64],
    row1: &mut [u64],
) {
    let len = 1usize << num_vars;
    ensure_krawtchouk(tail, num_vars);
    encode_union_into(g0, g1, len, &mut tail.buf_level);
    wht_in_place(&mut tail.buf_level);
    encode_bits_into(g1, len, &mut tail.buf);
    wht_in_place(&mut tail.buf);
    tail.e0.clear();
    tail.e0.resize(num_vars + 1, 0);
    tail.e1.clear();
    tail.e1.resize(num_vars + 1, 0);
    for (s, (&sv, &b)) in tail.buf_level.iter().zip(&tail.buf).enumerate() {
        let w = (s as u32).count_ones() as usize;
        let a = sv - b;
        tail.e0[w] += a * a;
        tail.e1[w] += b * b;
    }
    krawtchouk_rows(&tail.kraw, num_vars, &tail.e0, row0);
    krawtchouk_rows(&tail.kraw, num_vars, &tail.e1, row1);
}

/// `OSDV(f)`: pair counts over all minterms (default engine).
pub fn osdv(f: &TruthTable) -> Osdv {
    osdv_with(f, MintermFilter::All, OsdvEngine::Auto)
}

/// `OSDV0(f)`: pair counts over the 0-minterms (default engine).
pub fn osdv0(f: &TruthTable) -> Osdv {
    osdv_with(f, MintermFilter::Zeros, OsdvEngine::Auto)
}

/// `OSDV1(f)`: pair counts over the 1-minterms (default engine).
pub fn osdv1(f: &TruthTable) -> Osdv {
    osdv_with(f, MintermFilter::Ones, OsdvEngine::Auto)
}

pub(crate) fn count_pairs_naive(group: &[u64], row: &mut [u64], members: &mut Vec<u64>) {
    members.clear();
    for (w, &word) in group.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            members.push(((w as u64) << WORD_VARS) | bits.trailing_zeros() as u64);
            bits &= bits - 1;
        }
    }
    for (a, &x) in members.iter().enumerate() {
        for &y in &members[a + 1..] {
            let d = (x ^ y).count_ones() as usize;
            row[d - 1] += 1;
        }
    }
}

fn count_pairs_wht(group: &[u64], num_vars: usize, row: &mut [u64], wht: &mut Vec<i64>) {
    xor_autocorrelation_into(group, num_vars, wht);
    for (d, &cnt) in wht.iter().enumerate().skip(1) {
        debug_assert!(cnt >= 0 && cnt % 2 == 0, "ordered pair counts are even");
        let j = (d as u64).count_ones() as usize;
        row[j - 1] += (cnt / 2) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The Auto crossover is a recorded, tested constant: the spectral
    /// tail's threshold sits at half the classic `n·2^n` cost model.
    #[test]
    fn crossover_constants_are_pinned() {
        assert_eq!(AUTO_SPECTRAL_DIVISOR, 2);
        for (n, classic) in [
            (1usize, 2u64),
            (4, 64),
            (8, 2048),
            (10, 10240),
            (16, 1 << 20),
        ] {
            assert_eq!(classic_crossover(n), classic, "classic, n = {n}");
            assert_eq!(auto_crossover(n), classic / 2, "spectral, n = {n}");
        }
    }

    /// Binomial-coefficient direct sum `K_j(w) = Σ_i (−1)^i C(w,i)C(n−w,j−i)`.
    fn krawtchouk_direct(n: i64, j: i64, w: i64) -> i64 {
        fn binom(n: i64, k: i64) -> i64 {
            if k < 0 || k > n {
                return 0;
            }
            let mut acc = 1i64;
            for i in 0..k {
                acc = acc * (n - i) / (i + 1);
            }
            acc
        }
        (0..=j)
            .map(|i| {
                let sign = if i % 2 == 0 { 1 } else { -1 };
                sign * binom(w, i) * binom(n - w, j - i)
            })
            .sum()
    }

    #[test]
    fn krawtchouk_recurrence_matches_direct_sum() {
        let mut tail = SpectralTail::default();
        for n in 0..=10usize {
            ensure_krawtchouk(&mut tail, n);
            for j in 0..=n {
                for w in 0..=n {
                    assert_eq!(
                        tail.kraw[j * (n + 1) + w],
                        krawtchouk_direct(n as i64, j as i64, w as i64),
                        "K_{j}({w}) at n = {n}"
                    );
                }
            }
        }
    }

    /// The weight-binned tail must agree with both the pairwise counter
    /// and the classic autocorrelation on single groups.
    #[test]
    fn spectral_tail_matches_classic_counters() {
        let mut rng = StdRng::seed_from_u64(0x5bec);
        let mut tail = SpectralTail::default();
        let mut members = Vec::new();
        let mut wht = Vec::new();
        for n in 1..=9usize {
            for _ in 0..4 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let group = f.words().to_vec();
                let pop: u64 = group.iter().map(|w| w.count_ones() as u64).sum();
                if pop < 2 {
                    continue;
                }
                let mut by_spectral = vec![0u64; n];
                let mut by_naive = vec![0u64; n];
                let mut by_classic = vec![0u64; n];
                count_pairs_spectral(&group, n, &mut tail, &mut by_spectral);
                count_pairs_naive(&group, &mut by_naive, &mut members);
                count_pairs_wht(&group, n, &mut by_classic, &mut wht);
                assert_eq!(by_spectral, by_naive, "n = {n}, f = {f}");
                assert_eq!(by_spectral, by_classic, "n = {n}, f = {f}");
            }
        }
    }

    #[test]
    fn table1_majority_osdv1() {
        let f1 = TruthTable::majority(3);
        let v = osdv1(&f1);
        assert_eq!(v.flatten(), vec![0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0]);
        assert_eq!(v.delta(2, 2), 3);
    }

    #[test]
    fn table1_majority_osdv() {
        let f1 = TruthTable::majority(3);
        let v = osdv(&f1);
        assert_eq!(v.flatten(), vec![0, 0, 1, 0, 0, 0, 6, 6, 3, 0, 0, 0]);
    }

    #[test]
    fn table1_projection_osdv1_and_osdv() {
        let f3 = TruthTable::projection(3, 2).unwrap();
        assert_eq!(
            osdv1(&f3).flatten(),
            vec![0, 0, 0, 4, 2, 0, 0, 0, 0, 0, 0, 0]
        );
        assert_eq!(
            osdv(&f3).flatten(),
            vec![0, 0, 0, 12, 12, 4, 0, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn engines_agree() {
        let mut rng = StdRng::seed_from_u64(53);
        for n in 1..=8usize {
            for _ in 0..4 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                for filter in [
                    MintermFilter::All,
                    MintermFilter::Zeros,
                    MintermFilter::Ones,
                ] {
                    let a = osdv_with(&f, filter, OsdvEngine::Pairwise);
                    let b = osdv_with(&f, filter, OsdvEngine::Wht);
                    assert_eq!(a, b, "n = {n}, filter = {filter:?}, f = {f}");
                }
            }
        }
    }

    #[test]
    fn fused_point_sections_match_separate_computation() {
        let mut rng = StdRng::seed_from_u64(0xF05E);
        let mut scratch = OsdvScratch::default();
        let (mut r0, mut r1, mut h0, mut h1) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for n in 0..=7usize {
            for _ in 0..4 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let prof = SensitivityProfile::compute(&f);
                osdv_point_sections_into(
                    &f,
                    &prof,
                    OsdvEngine::Auto,
                    &mut scratch,
                    &mut r0,
                    &mut r1,
                    &mut h0,
                    &mut h1,
                );
                let d0 = osdv_from_profile(&f, &prof, MintermFilter::Zeros, OsdvEngine::Auto);
                let d1 = osdv_from_profile(&f, &prof, MintermFilter::Ones, OsdvEngine::Auto);
                let (e0, e1) = prof.histograms_by_value(&f);
                assert_eq!(r0, d0.flatten(), "rows0, n = {n}, f = {f}");
                assert_eq!(r1, d1.flatten(), "rows1, n = {n}, f = {f}");
                assert_eq!(h0, e0, "h0, n = {n}, f = {f}");
                assert_eq!(h1, e1, "h1, n = {n}, f = {f}");
            }
        }
    }

    #[test]
    fn row_sums_are_group_pair_counts() {
        let mut rng = StdRng::seed_from_u64(59);
        let f = TruthTable::random(6, &mut rng).unwrap();
        let prof = SensitivityProfile::compute(&f);
        let hist = prof.histogram();
        let v = osdv(&f);
        for s in 0..=6u32 {
            let g = hist[s as usize];
            let expect = g * g.saturating_sub(1) / 2;
            assert_eq!(v.sigma(s).iter().sum::<u64>(), expect, "σ_{s} row sum");
        }
    }

    #[test]
    fn zero_vars_osdv_is_empty() {
        let f = TruthTable::one(0).unwrap();
        let v = osdv(&f);
        assert_eq!(v.flatten(), Vec::<u64>::new());
        assert_eq!(v.total_pairs(), 0);
    }

    #[test]
    fn display_matches_paper_format() {
        let v = osdv1(&TruthTable::majority(3));
        assert_eq!(format!("{v}"), "(0,0,0,0,0,0,0,3,0,0,0,0)");
    }

    #[test]
    fn split_vectors_partition_when_phases_fixed() {
        // Pairs of OSDV are NOT a partition of OSDV (cross-value pairs with
        // equal sensitivity exist), but each split total is bounded by the
        // full total.
        let f = TruthTable::from_hex(4, "3c5a").unwrap();
        let all = osdv(&f).total_pairs();
        let zeros = osdv0(&f).total_pairs();
        let ones = osdv1(&f).total_pairs();
        assert!(zeros + ones <= all);
    }
}
