//! Local sensitivity — the *point* characteristic
//! (Definitions 3, 4 and 8 of the paper).
//!
//! The local sensitivity `sen(f, X)` counts the neighbours of minterm `X`
//! (Hamming distance 1) on which `f` takes the other value. The ordered
//! sensitivity vectors `OSV`, `OSV0`, `OSV1` sort those counts over all
//! minterms, or over the 0-/1-minterms only.
//!
//! # Computation
//!
//! For every variable `i` the Boolean derivative `d_i = f ⊕ f[x_i ← ¬x_i]`
//! marks exactly the minterms sensitive at `i`, so `sen(f, X)` is the
//! column sum of an `n × 2^n` bit matrix. [`SensitivityProfile`] sums the
//! columns *bit-sliced*: five carry-save accumulator planes of `2^n` bits
//! each absorb one derivative per ripple-carry step, giving
//! `O(n·2^n/64)` word operations for the whole profile — the "bitwise
//! operation techniques" the paper credits to Hacker's Delight. A naive
//! per-minterm reference implementation is kept for differential testing.

use facepoint_truth::words::{valid_bits_mask, word_count, WORD_VARS};
use facepoint_truth::TruthTable;

/// Number of accumulator bit-planes: sensitivities reach at most
/// [`MAX_VARS`](facepoint_truth::MAX_VARS) = 16, which needs 5 bits.
const PLANES: usize = 5;

/// Per-minterm local sensitivities of a function, stored bit-sliced.
///
/// Plane `p` holds bit `p` of every minterm's sensitivity count; the
/// planes act as a carry-save adder over the `n` Boolean derivatives.
///
/// # Examples
///
/// ```
/// use facepoint_sig::SensitivityProfile;
/// use facepoint_truth::TruthTable;
///
/// let maj = TruthTable::majority(3);
/// let prof = SensitivityProfile::compute(&maj);
/// assert_eq!(prof.local(0b111), 0); // interior point of the majority
/// assert_eq!(prof.local(0b110), 2);
/// assert_eq!(prof.max_sensitivity(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensitivityProfile {
    num_vars: usize,
    planes: Vec<Vec<u64>>,
}

impl Default for SensitivityProfile {
    /// An empty profile (zero variables, zeroed planes) — a reusable
    /// slot for [`SensitivityProfile::compute_into`].
    fn default() -> Self {
        SensitivityProfile {
            num_vars: 0,
            planes: vec![Vec::new(); PLANES],
        }
    }
}

impl SensitivityProfile {
    /// Computes the profile with the bit-sliced carry-save accumulator.
    pub fn compute(f: &TruthTable) -> Self {
        let mut p = SensitivityProfile::default();
        p.compute_into(f);
        p
    }

    /// Recomputes the profile for `f` in place, reusing the plane
    /// allocations — the steady-state path of the signature kernel.
    ///
    /// Derivative words are formed on the fly from the packed table
    /// (`w ⊕ flip_var_word(w)` in-word, `w ⊕ partner` across words), so
    /// no flipped table is ever materialized and the whole profile is
    /// one pass of `O(n·2^n/64)` word operations with zero heap
    /// allocations once the planes have grown to the table size.
    pub fn compute_into(&mut self, f: &TruthTable) {
        use facepoint_truth::words::flip_var_word;
        let n = f.num_vars();
        let wc = word_count(n);
        self.num_vars = n;
        self.planes.resize(PLANES, Vec::new());
        for plane in &mut self.planes {
            plane.clear();
            plane.resize(wc, 0);
        }
        let words = f.words();
        for var in 0..n {
            let high_bit = if var >= WORD_VARS {
                1usize << (var - WORD_VARS)
            } else {
                0
            };
            for w in 0..wc {
                let fw = words[w];
                let dw = if var < WORD_VARS {
                    fw ^ flip_var_word(fw, var)
                } else {
                    fw ^ words[w ^ high_bit]
                };
                let mut carry = dw;
                for plane in self.planes.iter_mut() {
                    if carry == 0 {
                        break;
                    }
                    let t = plane[w] & carry;
                    plane[w] ^= carry;
                    carry = t;
                }
                debug_assert_eq!(carry, 0, "sensitivity exceeded plane capacity");
            }
        }
    }

    /// Reference implementation: walks every (minterm, variable) pair.
    /// Quadratically slower; exists to differential-test
    /// [`SensitivityProfile::compute`].
    pub fn compute_naive(f: &TruthTable) -> Self {
        let n = f.num_vars();
        let wc = word_count(n);
        let mut planes = vec![vec![0u64; wc]; PLANES];
        for m in 0..f.num_bits() {
            let mut s = 0u64;
            for var in 0..n {
                if f.bit(m) != f.bit(m ^ (1 << var)) {
                    s += 1;
                }
            }
            for (p, plane) in planes.iter_mut().enumerate() {
                if (s >> p) & 1 == 1 {
                    plane[(m >> WORD_VARS) as usize] |= 1 << (m & 63);
                }
            }
        }
        SensitivityProfile {
            num_vars: n,
            planes,
        }
    }

    /// Number of variables of the profiled function.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The local sensitivity `sen(f, X)` of minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^n`.
    pub fn local(&self, m: u64) -> u32 {
        assert!(m < 1u64 << self.num_vars, "minterm index out of range");
        let w = (m >> WORD_VARS) as usize;
        let b = m & 63;
        let mut s = 0u32;
        for (p, plane) in self.planes.iter().enumerate() {
            s |= (((plane[w] >> b) & 1) as u32) << p;
        }
        s
    }

    /// Bit-packed indicator of the minterms whose sensitivity equals `s`
    /// (padding bits of sub-word tables are masked off).
    pub fn indicator(&self, s: u32) -> Vec<u64> {
        let mut out = Vec::new();
        self.indicator_into(s, &mut out);
        out
    }

    /// Writes the indicator of sensitivity level `s` into `out`,
    /// reusing its allocation (see [`SensitivityProfile::indicator`]).
    pub fn indicator_into(&self, s: u32, out: &mut Vec<u64>) {
        let wc = self.planes[0].len();
        out.clear();
        out.resize(wc, u64::MAX);
        for (p, plane) in self.planes.iter().enumerate() {
            for (o, &pw) in out.iter_mut().zip(plane) {
                *o &= if (s >> p) & 1 == 1 { pw } else { !pw };
            }
        }
        if self.num_vars < WORD_VARS {
            out[0] &= valid_bits_mask(self.num_vars);
        }
    }

    /// Histogram of sensitivities: entry `s` counts the minterms with
    /// `sen(f, X) = s`. Length `n + 1`.
    ///
    /// This is the space-efficient encoding of the paper's `OSV` (a sorted
    /// multiset over `0..=n` is its histogram).
    pub fn histogram(&self) -> Vec<u64> {
        (0..=self.num_vars as u32)
            .map(|s| {
                self.indicator(s)
                    .iter()
                    .map(|w| w.count_ones() as u64)
                    .sum()
            })
            .collect()
    }

    /// Histograms of sensitivities restricted to the 0-minterms and
    /// 1-minterms of `f` — the paper's `OSV0` and `OSV1`.
    ///
    /// # Panics
    ///
    /// Panics if `f` has a different variable count than the profile.
    pub fn histograms_by_value(&self, f: &TruthTable) -> (Vec<u64>, Vec<u64>) {
        let mut h0 = Vec::new();
        let mut h1 = Vec::new();
        let mut ind = Vec::new();
        self.histograms_by_value_into(f, &mut h0, &mut h1, &mut ind);
        (h0, h1)
    }

    /// Writes the `OSV0`/`OSV1` histograms into `h0`/`h1`, using `ind`
    /// as indicator scratch — the allocation-free form of
    /// [`SensitivityProfile::histograms_by_value`].
    ///
    /// # Panics
    ///
    /// Panics if `f` has a different variable count than the profile.
    pub fn histograms_by_value_into(
        &self,
        f: &TruthTable,
        h0: &mut Vec<u64>,
        h1: &mut Vec<u64>,
        ind: &mut Vec<u64>,
    ) {
        assert_eq!(
            f.num_vars(),
            self.num_vars,
            "profile/function arity mismatch"
        );
        h0.clear();
        h1.clear();
        for s in 0..=self.num_vars as u32 {
            self.indicator_into(s, ind);
            let mut c0 = 0u64;
            let mut c1 = 0u64;
            // Padding bits of `!fw` are harmless: `ind` is already masked.
            for (&iw, &fw) in ind.iter().zip(f.words()) {
                c1 += (iw & fw).count_ones() as u64;
                c0 += (iw & !fw).count_ones() as u64;
            }
            h0.push(c0);
            h1.push(c1);
        }
    }

    /// The global sensitivity `sen(f) = max_X sen(f, X)` (Definition 4).
    pub fn max_sensitivity(&self) -> u32 {
        let h = self.histogram();
        h.iter().rposition(|&c| c > 0).unwrap_or(0) as u32
    }

    /// Sum of all local sensitivities, `Σ_X sen(f, X)`.
    ///
    /// Identity used in property tests: this equals `2·Σ_i inf(f, i)`.
    pub fn total(&self) -> u64 {
        self.histogram()
            .iter()
            .enumerate()
            .map(|(s, &c)| s as u64 * c)
            .sum()
    }
}

/// The ordered sensitivity vector `OSV(f)` as the paper prints it: all
/// `2^n` local sensitivities sorted non-decreasingly.
///
/// For machine use prefer [`osv_histogram`]; this expansion is exponential
/// in `n` by construction.
///
/// # Examples
///
/// ```
/// use facepoint_sig::osv;
/// use facepoint_truth::TruthTable;
///
/// // Table I: OSV of the 3-majority is (0,0,2,2,2,2,2,2).
/// assert_eq!(osv(&TruthTable::majority(3)), vec![0, 0, 2, 2, 2, 2, 2, 2]);
/// ```
pub fn osv(f: &TruthTable) -> Vec<u32> {
    expand(&SensitivityProfile::compute(f).histogram())
}

/// The ordered 0-sensitivity vector `OSV0(f)`: sensitivities of the
/// 0-minterms, sorted.
pub fn osv0(f: &TruthTable) -> Vec<u32> {
    expand(&SensitivityProfile::compute(f).histograms_by_value(f).0)
}

/// The ordered 1-sensitivity vector `OSV1(f)`: sensitivities of the
/// 1-minterms, sorted.
///
/// # Examples
///
/// ```
/// use facepoint_sig::osv1;
/// use facepoint_truth::TruthTable;
///
/// // Table I: OSV1 of the 3-majority is (0,2,2,2).
/// assert_eq!(osv1(&TruthTable::majority(3)), vec![0, 2, 2, 2]);
/// ```
pub fn osv1(f: &TruthTable) -> Vec<u32> {
    expand(&SensitivityProfile::compute(f).histograms_by_value(f).1)
}

/// Histogram form of `OSV` (length `n + 1`).
pub fn osv_histogram(f: &TruthTable) -> Vec<u64> {
    SensitivityProfile::compute(f).histogram()
}

/// Histogram forms of `(OSV0, OSV1)`.
pub fn osv_histograms_by_value(f: &TruthTable) -> (Vec<u64>, Vec<u64>) {
    let p = SensitivityProfile::compute(f);
    p.histograms_by_value(f)
}

/// The sensitivity `sen(f)` of the function (Definition 4).
pub fn sen(f: &TruthTable) -> u32 {
    SensitivityProfile::compute(f).max_sensitivity()
}

/// The 0-sensitivity `sen0(f) = max{sen(f,X) : f(X) = 0}`; `0` if `f` has
/// no 0-minterm.
pub fn sen0(f: &TruthTable) -> u32 {
    let (h0, _) = osv_histograms_by_value(f);
    h0.iter().rposition(|&c| c > 0).unwrap_or(0) as u32
}

/// The 1-sensitivity `sen1(f) = max{sen(f,X) : f(X) = 1}`; `0` if `f` has
/// no 1-minterm.
pub fn sen1(f: &TruthTable) -> u32 {
    let (_, h1) = osv_histograms_by_value(f);
    h1.iter().rposition(|&c| c > 0).unwrap_or(0) as u32
}

fn expand(hist: &[u64]) -> Vec<u32> {
    let mut v = Vec::new();
    for (s, &c) in hist.iter().enumerate() {
        for _ in 0..c {
            v.push(s as u32);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table1_majority() {
        let f1 = TruthTable::majority(3);
        assert_eq!(osv1(&f1), vec![0, 2, 2, 2]);
        assert_eq!(osv0(&f1), vec![0, 2, 2, 2]);
        assert_eq!(osv(&f1), vec![0, 0, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn table1_projection() {
        let f3 = TruthTable::projection(3, 2).unwrap();
        assert_eq!(osv1(&f3), vec![1, 1, 1, 1]);
        assert_eq!(osv0(&f3), vec![1, 1, 1, 1]);
        assert_eq!(osv(&f3), vec![1; 8]);
    }

    #[test]
    fn parity_has_full_sensitivity_everywhere() {
        let f = TruthTable::parity(4);
        assert_eq!(osv(&f), vec![4; 16]);
        assert_eq!(sen(&f), 4);
        assert_eq!(sen0(&f), 4);
        assert_eq!(sen1(&f), 4);
    }

    #[test]
    fn constants_are_insensitive() {
        let f = TruthTable::zero(5).unwrap();
        assert_eq!(osv(&f), vec![0; 32]);
        assert_eq!(sen1(&f), 0, "empty max defaults to 0");
    }

    #[test]
    fn bit_sliced_matches_naive() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in 0..=9usize {
            for _ in 0..6 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                assert_eq!(
                    SensitivityProfile::compute(&f),
                    SensitivityProfile::compute_naive(&f),
                    "n = {n}, f = {f}"
                );
            }
        }
    }

    #[test]
    fn histogram_sums_to_cube_size() {
        let mut rng = StdRng::seed_from_u64(43);
        for n in 0..=8usize {
            let f = TruthTable::random(n, &mut rng).unwrap();
            let h = osv_histogram(&f);
            assert_eq!(h.iter().sum::<u64>(), 1 << n);
            let (h0, h1) = osv_histograms_by_value(&f);
            for s in 0..=n {
                assert_eq!(h0[s] + h1[s], h[s], "split histograms partition");
            }
        }
    }

    #[test]
    fn total_sensitivity_equals_twice_total_influence() {
        let mut rng = StdRng::seed_from_u64(47);
        for n in 1..=8usize {
            let f = TruthTable::random(n, &mut rng).unwrap();
            let prof = SensitivityProfile::compute(&f);
            assert_eq!(prof.total(), 2 * crate::influence::total_influence(&f));
        }
    }

    #[test]
    fn indicator_masks_padding() {
        // 2-variable constant: all 4 minterms have sensitivity 0, and the
        // 60 padding bits must not leak into the indicator.
        let f = TruthTable::zero(2).unwrap();
        let prof = SensitivityProfile::compute(&f);
        let ind = prof.indicator(0);
        assert_eq!(ind[0].count_ones(), 4);
    }

    #[test]
    fn multiword_profile() {
        let f = TruthTable::majority(9);
        let prof = SensitivityProfile::compute(&f);
        // Majority of 9: the sensitive shell is the words with 4 or 5
        // ones; both flip through the 5 "swing" variables.
        assert_eq!(prof.local(0b000011111), 5);
        assert_eq!(prof.local(0b000001111), 5);
        assert_eq!(prof.local(0b111111111), 0);
        assert_eq!(prof.max_sensitivity(), 5);
    }
}
