//! The Mixed Signature Vector (MSV) — Algorithm 1 of the paper.
//!
//! The classifier computes, per truth table, a concatenation of the
//! selected signature vectors, canonicalized so that NPN-equivalent
//! functions produce byte-identical MSVs. Hash the MSV and the class map
//! falls out — no transformation enumeration.
//!
//! # Output-phase canonicalization
//!
//! Cofactor and split sensitivity vectors change under output negation, so
//! the MSV must fix the polarity:
//!
//! * *unbalanced* functions use the polarity with the smaller satisfy
//!   count (the paper's "0-ary cofactor" trick);
//! * *balanced* functions compute the raw MSV of both `f` and `¬f` and
//!   keep the lexicographically smaller one. This subsumes the paper's
//!   Theorem 3/4 rule of placing the smaller of `OSV0`/`OSV1` first and
//!   also fixes the cofactor sections, which the swap rule alone leaves
//!   ambiguous (see DESIGN.md §5).
//!
//! # Output-negation derivation rules
//!
//! `raw_msv(¬f)` never needs a second pass (or a materialized `¬f`):
//! every section derives from `f`'s ingredients, which is what
//! [`SigKernel`](crate::SigKernel) exploits:
//!
//! | section | under `f ↦ ¬f` | why |
//! |---|---|---|
//! | `OIV` | unchanged | the derivative `f ⊕ f[x←¬x]` is invariant under complement |
//! | `OCVℓ` | each count `c ↦ 2^{n−ℓ} − c`; sorted order reverses | a face holds `2^{n−ℓ}` points, `¬f` satisfies the complement |
//! | `OSV0`/`OSV1` | swap | sensitivities are derivative column sums (invariant); 0-minterms of `¬f` are 1-minterms of `f` |
//! | `OSDV0`/`OSDV1` | swap | same filter swap over the invariant sensitivity groups |
//! | sorted \|Walsh\| | unchanged | `W(¬f) = −W(f)` pointwise |
//!
//! The sections of `f` and `¬f` therefore always have equal lengths,
//! so the balanced-function lexicographic minimum can be decided in
//! lockstep, stage by stage, at the first differing word.

use crate::cofactor::{ocv1, ocv2};
use crate::distance::{osdv_from_profile, MintermFilter, OsdvEngine};
use crate::influence::oiv;
use crate::sensitivity::SensitivityProfile;
use facepoint_truth::TruthTable;
use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// A set of signature-vector families to include in an MSV.
///
/// Combine with `|`:
///
/// ```
/// use facepoint_sig::SignatureSet;
///
/// let set = SignatureSet::OIV | SignatureSet::OSV;
/// assert!(set.contains(SignatureSet::OIV));
/// assert!(!set.contains(SignatureSet::OCV1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SignatureSet(u8);

impl SignatureSet {
    /// No signatures (classifies everything of equal arity together).
    pub const EMPTY: Self = SignatureSet(0);
    /// 1-ary ordered cofactor vector.
    pub const OCV1: Self = SignatureSet(1 << 0);
    /// 2-ary ordered cofactor vector.
    pub const OCV2: Self = SignatureSet(1 << 1);
    /// Ordered influence vector.
    pub const OIV: Self = SignatureSet(1 << 2);
    /// Ordered (split) sensitivity vectors `OSV0`/`OSV1`.
    pub const OSV: Self = SignatureSet(1 << 3);
    /// Ordered (split) sensitivity-distance vectors `OSDV0`/`OSDV1`.
    pub const OSDV: Self = SignatureSet(1 << 4);
    /// Sorted absolute Walsh spectrum — an *extension* beyond the paper
    /// (its related work cites spectral matching; this library offers it
    /// as an extra NPN-invariant family for ablation).
    pub const WALSH: Self = SignatureSet(1 << 5);
    /// 3-ary ordered cofactor vector — the next "higher-ary" face
    /// signature (Definition 6). The paper notes computing all-ary
    /// cofactor signatures is time-consuming; this family exists to
    /// quantify that trade-off (`C(n,3)·8` masked popcounts per
    /// function).
    pub const OCV3: Self = SignatureSet(1 << 6);

    /// Every signature family of the paper — its "All" column
    /// (excludes the [`SignatureSet::WALSH`] extension).
    pub const fn all() -> Self {
        SignatureSet(0b1_1111)
    }

    /// The paper's families plus the Walsh-spectrum and `OCV3`
    /// extensions.
    pub const fn all_extended() -> Self {
        SignatureSet(0b111_1111)
    }

    /// Whether every family of `other` is included in `self`.
    pub const fn contains(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no family is selected.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The eight column configurations evaluated in Table II of the paper,
    /// in column order, with their display names.
    pub fn table2_columns() -> [(&'static str, SignatureSet); 8] {
        use SignatureSet as S;
        [
            ("OIV", S::OIV),
            ("OCV1", S::OCV1),
            ("OSV", S::OSV),
            ("OIV+OSV", S(S::OIV.0 | S::OSV.0)),
            ("OCV1+OSV", S(S::OCV1.0 | S::OSV.0)),
            ("OCV1+OCV2+OSV", S(S::OCV1.0 | S::OCV2.0 | S::OSV.0)),
            ("OIV+OSV+OSDV", S(S::OIV.0 | S::OSV.0 | S::OSDV.0)),
            ("All", S::all()),
        ]
    }

    /// Parses names like `"OIV+OSV+OSDV"` or `"all"` (case-insensitive).
    ///
    /// Returns `None` on an unknown component.
    pub fn parse(s: &str) -> Option<Self> {
        let mut set = SignatureSet::EMPTY;
        for part in s.split('+') {
            set |= match part.trim().to_ascii_lowercase().as_str() {
                "ocv1" => Self::OCV1,
                "ocv2" => Self::OCV2,
                "oiv" => Self::OIV,
                "osv" => Self::OSV,
                "osdv" => Self::OSDV,
                "walsh" => Self::WALSH,
                "ocv3" => Self::OCV3,
                "all" => Self::all(),
                "extended" => Self::all_extended(),
                _ => return None,
            };
        }
        Some(set)
    }
}

impl BitOr for SignatureSet {
    type Output = Self;

    fn bitor(self, rhs: Self) -> Self {
        SignatureSet(self.0 | rhs.0)
    }
}

impl BitOrAssign for SignatureSet {
    fn bitor_assign(&mut self, rhs: Self) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for SignatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let mut first = true;
        for (name, flag) in [
            ("OCV1", Self::OCV1),
            ("OCV2", Self::OCV2),
            ("OIV", Self::OIV),
            ("OSV", Self::OSV),
            ("OSDV", Self::OSDV),
            ("WALSH", Self::WALSH),
            ("OCV3", Self::OCV3),
        ] {
            if self.contains(flag) {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// A canonicalized Mixed Signature Vector.
///
/// Equal MSVs (under the same [`SignatureSet`]) are a *necessary*
/// condition for NPN equivalence — the classifier buckets on them. The
/// flattened form is ordered and self-delimiting (every section is
/// prefixed by a tag and its length), so `Eq`/`Ord`/`Hash` on the raw
/// vector are sound.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Msv(Vec<u64>);

impl Msv {
    /// Wraps an already-serialized word vector (crate-internal: the
    /// kernel builds MSVs without going through `raw_msv`).
    pub(crate) fn from_words_vec(words: Vec<u64>) -> Self {
        Msv(words)
    }

    /// The flattened canonical words.
    pub fn as_words(&self) -> &[u64] {
        &self.0
    }

    /// Length in words (used by memory ablations).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty (only for `SignatureSet::EMPTY`).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Computes the canonical MSV of `f` under the selected signature set —
/// the per-function work of Algorithm 1 (lines 2–6).
///
/// NPN-equivalent functions yield equal MSVs (Theorems 1–4); distinct
/// MSVs therefore prove non-equivalence.
///
/// # Examples
///
/// ```
/// use facepoint_sig::{msv, SignatureSet};
/// use facepoint_truth::{NpnTransform, TruthTable};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let f = TruthTable::random(6, &mut rng)?;
/// let g = NpnTransform::random(6, &mut rng).apply(&f);
/// assert_eq!(msv(&f, SignatureSet::all()), msv(&g, SignatureSet::all()));
/// # Ok::<(), facepoint_truth::Error>(())
/// ```
pub fn msv(f: &TruthTable, set: SignatureSet) -> Msv {
    crate::SigKernel::new().msv(f, set)
}

/// The straightforward reference implementation of [`msv`]: recompute
/// every stage per polarity via [`raw_msv`] and take the lexicographic
/// minimum. Kept as the differential-testing and benchmarking baseline
/// for the single-pass [`SigKernel`](crate::SigKernel); both produce
/// bit-identical vectors.
pub fn msv_reference(f: &TruthTable, set: SignatureSet) -> Msv {
    let ones = f.count_ones();
    let zeros = f.num_bits() - ones;
    if ones < zeros {
        raw_msv(f, set)
    } else if ones > zeros {
        raw_msv(&!f, set)
    } else {
        let a = raw_msv(f, set);
        let b = raw_msv(&!f, set);
        a.min(b)
    }
}

/// The polarity-sensitive MSV of `f` as given (no output-phase
/// canonicalization). Invariant under input negation/permutation only.
///
/// Exposed for tests and for studying the balanced-function rule; use
/// [`msv`] for classification.
pub fn raw_msv(f: &TruthTable, set: SignatureSet) -> Msv {
    let mut out: Vec<u64> = vec![f.num_vars() as u64];
    for stage in STAGE_ORDER {
        if set.contains(stage) {
            push_stage_sections(f, stage, &mut out);
        }
    }
    Msv(out)
}

/// Canonical serialization order of the signature families, cheapest
/// first.
///
/// Both the flat MSV and `facepoint-core`'s hierarchical classifier walk
/// the families in this order, which makes their balanced-function
/// polarity choices (lexicographic minima) provably coincide.
pub const STAGE_ORDER: [SignatureSet; 7] = [
    SignatureSet::OIV,
    SignatureSet::OCV1,
    SignatureSet::OSV,
    SignatureSet::OCV2,
    SignatureSet::WALSH,
    SignatureSet::OSDV,
    SignatureSet::OCV3,
];

/// Appends the tagged section(s) of exactly one signature family to
/// `out` — the shared serialization step of [`raw_msv`] and the staged
/// classifier.
///
/// # Panics
///
/// Panics if `stage` is not a single family from [`STAGE_ORDER`].
pub fn push_stage_sections(f: &TruthTable, stage: SignatureSet, out: &mut Vec<u64>) {
    fn push_section(out: &mut Vec<u64>, tag: u64, data: &[u64]) {
        out.push(tag);
        out.push(data.len() as u64);
        out.extend_from_slice(data);
    }
    match stage {
        s if s == SignatureSet::OIV => {
            let v: Vec<u64> = oiv(f).iter().map(|&x| x as u64).collect();
            push_section(out, 3, &v);
        }
        s if s == SignatureSet::OCV1 => {
            let v: Vec<u64> = ocv1(f).iter().map(|&x| x as u64).collect();
            push_section(out, 1, &v);
        }
        s if s == SignatureSet::OCV2 => {
            let v: Vec<u64> = ocv2(f).iter().map(|&x| x as u64).collect();
            push_section(out, 2, &v);
        }
        s if s == SignatureSet::OCV3 => {
            if f.num_vars() >= 3 {
                let v: Vec<u64> = crate::cofactor::ocv(f, 3)
                    .iter()
                    .map(|&x| x as u64)
                    .collect();
                push_section(out, 9, &v);
            }
        }
        s if s == SignatureSet::OSV => {
            let profile = SensitivityProfile::compute(f);
            let (h0, h1) = profile.histograms_by_value(f);
            push_section(out, 4, &h0);
            push_section(out, 5, &h1);
        }
        s if s == SignatureSet::OSDV => {
            let profile = SensitivityProfile::compute(f);
            let d0 = osdv_from_profile(f, &profile, MintermFilter::Zeros, OsdvEngine::Auto);
            let d1 = osdv_from_profile(f, &profile, MintermFilter::Ones, OsdvEngine::Auto);
            push_section(out, 6, &d0.flatten());
            push_section(out, 7, &d1.flatten());
        }
        s if s == SignatureSet::WALSH => {
            let spec: Vec<u64> = crate::spectral::walsh_spectrum_sorted_abs(f)
                .into_iter()
                .map(|v| v as u64)
                .collect();
            push_section(out, 8, &spec);
        }
        other => panic!("push_stage_sections takes a single family, got {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn signature_set_algebra() {
        let s = SignatureSet::OIV | SignatureSet::OSDV;
        assert!(s.contains(SignatureSet::OIV));
        assert!(s.contains(SignatureSet::OSDV));
        assert!(!s.contains(SignatureSet::OSV));
        assert!(SignatureSet::all().contains(s));
        assert!(SignatureSet::EMPTY.is_empty());
    }

    #[test]
    fn parse_roundtrip() {
        for (name, set) in SignatureSet::table2_columns() {
            if name == "All" {
                assert_eq!(SignatureSet::parse("all"), Some(SignatureSet::all()));
            } else {
                assert_eq!(SignatureSet::parse(name), Some(set), "{name}");
            }
        }
        assert_eq!(SignatureSet::parse("nope"), None);
        assert_eq!(
            SignatureSet::parse("ocv1+OCV2"),
            Some(SignatureSet::OCV1 | SignatureSet::OCV2)
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(
            format!("{}", SignatureSet::OIV | SignatureSet::OSV),
            "OIV+OSV"
        );
        assert_eq!(format!("{}", SignatureSet::EMPTY), "∅");
    }

    #[test]
    fn msv_invariant_under_npn_all_arities() {
        let mut rng = StdRng::seed_from_u64(61);
        for n in 0..=7usize {
            for _ in 0..12 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let t = NpnTransform::random(n, &mut rng);
                let g = t.apply(&f);
                assert_eq!(
                    msv(&f, SignatureSet::all()),
                    msv(&g, SignatureSet::all()),
                    "n = {n}, f = {f}, t = {t}"
                );
            }
        }
    }

    #[test]
    fn msv_distinguishes_majority_from_projection() {
        let f1 = TruthTable::majority(3);
        let f3 = TruthTable::projection(3, 2).unwrap();
        assert_ne!(msv(&f1, SignatureSet::OIV), msv(&f3, SignatureSet::OIV));
    }

    #[test]
    fn balanced_polarity_canonicalization() {
        // For a balanced function, f and ¬f must collide.
        let mut rng = StdRng::seed_from_u64(67);
        let mut checked = 0;
        while checked < 10 {
            let f = TruthTable::random(5, &mut rng).unwrap();
            if !f.is_balanced() {
                continue;
            }
            assert_eq!(msv(&f, SignatureSet::all()), msv(&!&f, SignatureSet::all()));
            checked += 1;
        }
    }

    #[test]
    fn unbalanced_polarity_canonicalization() {
        let f = TruthTable::from_hex(4, "0017").unwrap(); // 4 ones of 16
        assert_eq!(msv(&f, SignatureSet::all()), msv(&!&f, SignatureSet::all()));
    }

    #[test]
    fn arity_always_separates() {
        let a = TruthTable::zero(3).unwrap();
        let b = TruthTable::zero(4).unwrap();
        assert_ne!(msv(&a, SignatureSet::EMPTY), msv(&b, SignatureSet::EMPTY));
    }

    #[test]
    fn walsh_extension_is_npn_invariant() {
        let mut rng = StdRng::seed_from_u64(83);
        for n in 1..=6usize {
            for _ in 0..8 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let t = NpnTransform::random(n, &mut rng);
                assert_eq!(
                    msv(&f, SignatureSet::all_extended()),
                    msv(&t.apply(&f), SignatureSet::all_extended()),
                    "n = {n}, f = {f}"
                );
            }
        }
    }

    #[test]
    fn walsh_parse_and_display() {
        assert_eq!(SignatureSet::parse("walsh"), Some(SignatureSet::WALSH));
        assert_eq!(
            SignatureSet::parse("all+walsh"),
            Some(SignatureSet::all() | SignatureSet::WALSH)
        );
        assert_eq!(
            SignatureSet::parse("extended"),
            Some(SignatureSet::all_extended())
        );
        assert_eq!(SignatureSet::parse("ocv3"), Some(SignatureSet::OCV3));
        assert!(SignatureSet::all_extended().contains(SignatureSet::all()));
        assert!(!SignatureSet::all().contains(SignatureSet::WALSH));
        assert_eq!(format!("{}", SignatureSet::WALSH), "WALSH");
    }

    #[test]
    fn walsh_never_decreases_discrimination() {
        // Adding a section can only split candidate classes further.
        use std::collections::HashSet;
        let mut rng = StdRng::seed_from_u64(89);
        let fns: Vec<TruthTable> = (0..120)
            .map(|_| TruthTable::random(5, &mut rng).unwrap())
            .collect();
        let base: HashSet<Msv> = fns.iter().map(|f| msv(f, SignatureSet::all())).collect();
        let ext: HashSet<Msv> = fns
            .iter()
            .map(|f| msv(f, SignatureSet::all_extended()))
            .collect();
        assert!(ext.len() >= base.len());
    }

    #[test]
    fn sections_are_tagged_and_delimited() {
        let f = TruthTable::majority(3);
        let m = raw_msv(&f, SignatureSet::OCV1 | SignatureSet::OIV);
        // Stage order puts OIV before OCV1:
        // [n, tag=3, len=3, oiv..., tag=1, len=6, ocv1...]
        let w = m.as_words();
        assert_eq!(w[0], 3);
        assert_eq!(w[1], 3);
        assert_eq!(w[2], 3);
        assert_eq!(&w[3..6], &[2, 2, 2]);
        assert_eq!(w[6], 1);
        assert_eq!(w[7], 6);
        assert_eq!(&w[8..14], &[1, 1, 1, 3, 3, 3]);
    }

    #[test]
    fn raw_msv_equals_concatenated_stages() {
        // The flat vector is exactly the stage-ordered concatenation —
        // the invariant the hierarchical classifier relies on.
        let f = TruthTable::from_hex(4, "9ce1").unwrap();
        let set = SignatureSet::all_extended();
        let mut expected: Vec<u64> = vec![4];
        for stage in STAGE_ORDER {
            if set.contains(stage) {
                push_stage_sections(&f, stage, &mut expected);
            }
        }
        assert_eq!(raw_msv(&f, set).as_words(), &expected[..]);
    }
}
