//! The zero-allocation signature kernel.
//!
//! [`SigKernel`] owns every scratch buffer the signature pipeline
//! needs, so classifying a stream of functions performs **zero**
//! steady-state heap allocations: buffers grow to the high-water mark
//! of the largest arity seen and are reused from then on. Sections are
//! emitted through the [`MsvSink`] trait, so digest-mode consumers can
//! hash the canonical MSV without ever materializing it.
//!
//! # One pass, both polarities
//!
//! The kernel computes each signature ingredient **once per function**
//! and derives both output polarities from it (the rules are proved in
//! the [`crate::msv`] module docs):
//!
//! * the [`SensitivityProfile`] is shared between the `OSV` and `OSDV`
//!   stages *and* between `f` and `¬f` (Boolean derivatives are
//!   invariant under output negation);
//! * `OSV0`/`OSV1` and `OSDV0`/`OSDV1` of `¬f` are the swapped pair of
//!   `f`'s, so the split histograms and distance matrices are computed
//!   once and emitted in either order;
//! * `OCVℓ(¬f)` is the complement-and-reverse of the sorted `OCVℓ(f)`
//!   (each count `c` maps to `2^{n−ℓ} − c`);
//! * `OIV` and the sorted absolute Walsh spectrum are unchanged.
//!
//! A balanced function therefore costs barely more than an unbalanced
//! one: the two candidate vectors are compared stage by stage in
//! lockstep (their sections always have equal lengths), the first
//! difference resolves the polarity — exactly the flat MSV's
//! lexicographic minimum — and `¬f` is never materialized at all.

use crate::cofactor::ocv_sorted_into;
use crate::distance::{osdv_point_sections_into, OsdvEngine, OsdvScratch};
use crate::influence::oiv_sorted_into;
use crate::msv::{Msv, SignatureSet, STAGE_ORDER};
use crate::sensitivity::SensitivityProfile;
use crate::slices::LaneBatch;
use crate::spectral::walsh_spectrum_sorted_abs_into;
use facepoint_truth::TruthTable;

/// A consumer of canonical MSV words.
///
/// Implemented by `Vec<u64>` (materialize the vector) and by
/// `facepoint-core`'s rolling FNV-1a stream (digest without
/// materializing).
pub trait MsvSink {
    /// Consumes one word.
    fn word(&mut self, w: u64);

    /// Consumes a run of words (defaults to word-by-word).
    fn words(&mut self, ws: &[u64]) {
        for &w in ws {
            self.word(w);
        }
    }
}

impl MsvSink for Vec<u64> {
    fn word(&mut self, w: u64) {
        self.push(w);
    }

    fn words(&mut self, ws: &[u64]) {
        self.extend_from_slice(ws);
    }
}

/// Output-polarity choice while serializing a function.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Polarity {
    /// Serialize `f` as given.
    Keep,
    /// Serialize the derived sections of `¬f`.
    Negate,
    /// Balanced and still tied: build both, keep the smaller.
    Tied,
}

/// Which polarity variants a stage build produces.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Build {
    /// Only the `f` sections, into `sec_a`.
    Keep,
    /// Only the derived `¬f` sections, into `sec_a`.
    Negate,
    /// Both: `f` into `sec_a`, derived `¬f` into `sec_b`.
    Dual,
}

/// Reusable scratch state for single-pass, allocation-free signature
/// computation. See the `kernel` module docs (in the source — the
/// module is private) for the algorithm; create one per worker thread
/// and feed it any number of functions.
///
/// # Examples
///
/// ```
/// use facepoint_sig::{msv, SigKernel, SignatureSet};
/// use facepoint_truth::TruthTable;
///
/// let mut kernel = SigKernel::new();
/// let f = TruthTable::majority(3);
/// assert_eq!(kernel.msv(&f, SignatureSet::all()), msv(&f, SignatureSet::all()));
/// ```
#[derive(Debug, Default)]
pub struct SigKernel {
    /// Words (and arity) of the function the cached ingredients belong
    /// to; emptied fingerprint means nothing is cached.
    prof_words: Vec<u64>,
    prof_vars: usize,
    prof_valid: bool,
    profile: SensitivityProfile,
    profile_computed: bool,
    hists_valid: bool,
    h0: Vec<u64>,
    h1: Vec<u64>,
    rows_valid: bool,
    rows0: Vec<u64>,
    rows1: Vec<u64>,
    ind: Vec<u64>,
    counts: Vec<u64>,
    spec: Vec<i64>,
    osdv: OsdvScratch,
    sec_a: Vec<u64>,
    sec_b: Vec<u64>,
    /// Bit-sliced lane state for the batched entry points.
    batch: LaneBatch,
}

impl SigKernel {
    /// A fresh kernel with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Streams the canonical MSV of `f` under `set` into `sink` —
    /// [`crate::msv`] without the `Vec` (and, after warm-up, without
    /// any heap allocation).
    // analysis: no_alloc
    pub fn msv_to<S: MsvSink + ?Sized>(&mut self, f: &TruthTable, set: SignatureSet, sink: &mut S) {
        self.refresh_cache(f);
        // When OSDV is selected, run the fused sweep up front so the
        // earlier OSV stage shares its indicators (see `ensure_rows`).
        if set.contains(SignatureSet::OSDV) {
            self.ensure_rows(f);
        }
        self.serialize_stages(f, set, sink);
    }

    /// The polarity-canonicalizing stage serializer shared by the
    /// scalar ([`SigKernel::msv_to`]) and batched
    /// ([`SigKernel::msv_to_batched`]) entry points; expects the
    /// ingredient cache to be keyed to `f` already.
    fn serialize_stages<S: MsvSink + ?Sized>(
        &mut self,
        f: &TruthTable,
        set: SignatureSet,
        sink: &mut S,
    ) {
        sink.word(f.num_vars() as u64);
        let ones = f.count_ones();
        let zeros = f.num_bits() - ones;
        let mut polarity = if ones < zeros {
            Polarity::Keep
        } else if ones > zeros {
            Polarity::Negate
        } else {
            Polarity::Tied
        };
        for stage in STAGE_ORDER {
            if !set.contains(stage) {
                continue;
            }
            match polarity {
                Polarity::Keep => {
                    self.build_stage(f, stage, Build::Keep);
                    sink.words(&self.sec_a);
                }
                Polarity::Negate => {
                    self.build_stage(f, stage, Build::Negate);
                    sink.words(&self.sec_a);
                }
                Polarity::Tied => {
                    if stage_is_polarity_invariant(stage) {
                        self.build_stage(f, stage, Build::Keep);
                        sink.words(&self.sec_a);
                    } else {
                        self.build_stage(f, stage, Build::Dual);
                        // The first differing stage resolves the
                        // polarity — the flat MSV's lexicographic
                        // choice, decided without a second pass.
                        match self.sec_a.as_slice().cmp(self.sec_b.as_slice()) {
                            std::cmp::Ordering::Less => {
                                polarity = Polarity::Keep;
                                sink.words(&self.sec_a);
                            }
                            std::cmp::Ordering::Greater => {
                                polarity = Polarity::Negate;
                                sink.words(&self.sec_b);
                            }
                            std::cmp::Ordering::Equal => sink.words(&self.sec_a),
                        }
                    }
                }
            }
        }
    }

    /// Writes the canonical MSV words into `out`, reusing its
    /// allocation.
    pub fn msv_into(&mut self, f: &TruthTable, set: SignatureSet, out: &mut Vec<u64>) {
        out.clear();
        self.msv_to(f, set, out);
    }

    /// The canonical MSV as an owned [`Msv`] (allocates the result;
    /// scratch is still reused).
    pub fn msv(&mut self, f: &TruthTable, set: SignatureSet) -> Msv {
        let mut out = Vec::new();
        self.msv_to(f, set, &mut out);
        Msv::from_words_vec(out)
    }

    /// Computes the point-characteristic sections (`OSV0/1` histograms
    /// and `OSDV0/1` row matrices) of a whole same-arity batch in one
    /// bit-sliced lane pass (see [`crate::slices`]), priming the kernel
    /// for [`SigKernel::msv_to_batched`] calls addressed by slot.
    ///
    /// # Panics
    ///
    /// Panics if `fns` is empty, longer than [`crate::LANE_WIDTH`], or
    /// mixes arities.
    pub fn batch_point_sections(&mut self, fns: &[TruthTable]) {
        self.batch_point_sections_with(fns.len(), |i| &fns[i]);
    }

    /// Accessor-driven form of [`SigKernel::batch_point_sections`]:
    /// batches `width` tables resolved through `at` without requiring
    /// them to be contiguous in memory (the engine batches the cache
    /// misses of a chunk this way, allocation-free).
    pub fn batch_point_sections_with<'a>(
        &mut self,
        width: usize,
        at: impl Fn(usize) -> &'a TruthTable,
    ) {
        self.batch.load_with(width, at);
        self.batch.point_sections(OsdvEngine::Auto, &mut self.osdv);
    }

    /// Streams the canonical MSV of `f`, which must be slot `slot` of
    /// the batch most recently loaded by
    /// [`SigKernel::batch_point_sections`] (checked in debug builds):
    /// the batch's precomputed point sections replace the scalar
    /// sensitivity sweep, everything else — and the emitted words — is
    /// byte-identical to [`SigKernel::msv_to`].
    pub fn msv_to_batched<S: MsvSink + ?Sized>(
        &mut self,
        f: &TruthTable,
        slot: usize,
        set: SignatureSet,
        sink: &mut S,
    ) {
        debug_assert!(
            self.batch.slot_matches(slot, f),
            "batch slot {slot} does not hold this table"
        );
        self.refresh_cache(f);
        if set.contains(SignatureSet::OSV) || set.contains(SignatureSet::OSDV) {
            let (h0, h1) = self.batch.hists(slot);
            self.h0.clear();
            self.h0.extend_from_slice(h0);
            self.h1.clear();
            self.h1.extend_from_slice(h1);
            self.hists_valid = true;
            if set.contains(SignatureSet::OSDV) {
                let (r0, r1) = self.batch.rows(slot);
                self.rows0.clear();
                self.rows0.extend_from_slice(r0);
                self.rows1.clear();
                self.rows1.extend_from_slice(r1);
                self.rows_valid = true;
            }
        }
        self.serialize_stages(f, set, sink);
    }

    /// Batched canonical MSVs of one lane batch — the owned-result
    /// convenience over [`SigKernel::batch_point_sections`] plus
    /// [`SigKernel::msv_to_batched`] (scratch is reused, the returned
    /// vectors allocate).
    ///
    /// # Panics
    ///
    /// Panics if `fns` is empty, longer than [`crate::LANE_WIDTH`], or
    /// mixes arities.
    pub fn msv_batch(&mut self, fns: &[TruthTable], set: SignatureSet) -> Vec<Msv> {
        self.batch_point_sections(fns);
        fns.iter()
            .enumerate()
            .map(|(slot, f)| {
                let mut out = Vec::new();
                self.msv_to_batched(f, slot, set, &mut out);
                Msv::from_words_vec(out)
            })
            .collect()
    }

    /// Writes the polarity-fixed (raw) MSV into `out`: the serialization
    /// of `f` itself (`negated = false`) or of `¬f` derived from `f`'s
    /// ingredients (`negated = true`), without output-phase
    /// canonicalization. Bit-identical to
    /// [`raw_msv`](crate::raw_msv)`(f)` / `raw_msv(&!f)`.
    pub fn raw_msv_into(
        &mut self,
        f: &TruthTable,
        set: SignatureSet,
        negated: bool,
        out: &mut Vec<u64>,
    ) {
        self.refresh_cache(f);
        if set.contains(SignatureSet::OSDV) {
            self.ensure_rows(f);
        }
        out.clear();
        out.push(f.num_vars() as u64);
        let build = if negated { Build::Negate } else { Build::Keep };
        for stage in STAGE_ORDER {
            if set.contains(stage) {
                self.build_stage(f, stage, build);
                out.extend_from_slice(&self.sec_a);
            }
        }
    }

    /// Writes one stage's tagged section(s) into `out` for the chosen
    /// polarity — the staged (hierarchical) classifier's per-stage key,
    /// with `¬f` derived instead of materialized.
    pub fn stage_sections_into(
        &mut self,
        f: &TruthTable,
        stage: SignatureSet,
        negated: bool,
        out: &mut Vec<u64>,
    ) {
        self.refresh_cache(f);
        self.build_stage(f, stage, if negated { Build::Negate } else { Build::Keep });
        out.clear();
        out.extend_from_slice(&self.sec_a);
    }

    /// Builds one stage's sections for **both** polarities from shared
    /// ingredients and returns them as `(f, ¬f)` slices — what a
    /// balanced function's unresolved-polarity refinement step needs,
    /// at roughly half the cost of two independent computations.
    pub fn stage_sections_dual(&mut self, f: &TruthTable, stage: SignatureSet) -> (&[u64], &[u64]) {
        self.refresh_cache(f);
        if stage_is_polarity_invariant(stage) {
            self.build_stage(f, stage, Build::Keep);
            self.sec_b.clear();
            self.sec_b.extend_from_slice(&self.sec_a);
        } else {
            self.build_stage(f, stage, Build::Dual);
        }
        (&self.sec_a, &self.sec_b)
    }

    /// Invalidates the per-function ingredient cache when `f` differs
    /// from the previously profiled function (cheap word compare), so
    /// repeated stage calls on one function share one profile.
    fn refresh_cache(&mut self, f: &TruthTable) {
        if self.prof_valid && self.prof_vars == f.num_vars() && self.prof_words == f.words() {
            return;
        }
        self.prof_words.clear();
        self.prof_words.extend_from_slice(f.words());
        self.prof_vars = f.num_vars();
        self.prof_valid = true;
        // The profile itself is computed lazily: only the OSV/OSDV
        // stages pay for it.
        self.profile_computed = false;
        self.hists_valid = false;
        self.rows_valid = false;
    }

    fn ensure_profile(&mut self, f: &TruthTable) {
        if !self.profile_computed {
            self.profile.compute_into(f);
            self.profile_computed = true;
        }
    }

    fn ensure_hists(&mut self, f: &TruthTable) {
        if self.hists_valid {
            return;
        }
        self.ensure_profile(f);
        self.profile
            .histograms_by_value_into(f, &mut self.h0, &mut self.h1, &mut self.ind);
        self.hists_valid = true;
    }

    /// The fused point-characteristic sweep: one indicator per
    /// sensitivity level feeds the OSDV rows *and* the OSV histograms,
    /// so a set containing both families pays for one sweep total.
    fn ensure_rows(&mut self, f: &TruthTable) {
        if self.rows_valid {
            return;
        }
        self.ensure_profile(f);
        osdv_point_sections_into(
            f,
            &self.profile,
            OsdvEngine::Auto,
            &mut self.osdv,
            &mut self.rows0,
            &mut self.rows1,
            &mut self.h0,
            &mut self.h1,
        );
        self.rows_valid = true;
        self.hists_valid = true;
    }

    /// Fills `sec_a` (and `sec_b` for [`Build::Dual`]) with the tagged
    /// section(s) of one stage. Tags and layout match
    /// [`crate::push_stage_sections`] exactly.
    fn build_stage(&mut self, f: &TruthTable, stage: SignatureSet, build: Build) {
        self.sec_a.clear();
        self.sec_b.clear();
        let n = f.num_vars();
        match stage {
            s if s == SignatureSet::OIV => {
                oiv_sorted_into(f, &mut self.counts);
                push_section(&mut self.sec_a, 3, &self.counts);
            }
            s if s == SignatureSet::OCV1 => self.ocv_stage(f, 1, 1, build),
            s if s == SignatureSet::OCV2 => self.ocv_stage(f, 2, 2, build),
            s if s == SignatureSet::OCV3 => {
                if n >= 3 {
                    self.ocv_stage(f, 9, 3, build);
                }
            }
            s if s == SignatureSet::OSV => {
                self.ensure_hists(f);
                match build {
                    Build::Keep => {
                        push_section(&mut self.sec_a, 4, &self.h0);
                        push_section(&mut self.sec_a, 5, &self.h1);
                    }
                    Build::Negate => {
                        // 0-minterms of ¬f are the 1-minterms of f.
                        push_section(&mut self.sec_a, 4, &self.h1);
                        push_section(&mut self.sec_a, 5, &self.h0);
                    }
                    Build::Dual => {
                        push_section(&mut self.sec_a, 4, &self.h0);
                        push_section(&mut self.sec_a, 5, &self.h1);
                        push_section(&mut self.sec_b, 4, &self.h1);
                        push_section(&mut self.sec_b, 5, &self.h0);
                    }
                }
            }
            s if s == SignatureSet::OSDV => {
                self.ensure_rows(f);
                match build {
                    Build::Keep => {
                        push_section(&mut self.sec_a, 6, &self.rows0);
                        push_section(&mut self.sec_a, 7, &self.rows1);
                    }
                    Build::Negate => {
                        push_section(&mut self.sec_a, 6, &self.rows1);
                        push_section(&mut self.sec_a, 7, &self.rows0);
                    }
                    Build::Dual => {
                        push_section(&mut self.sec_a, 6, &self.rows0);
                        push_section(&mut self.sec_a, 7, &self.rows1);
                        push_section(&mut self.sec_b, 6, &self.rows1);
                        push_section(&mut self.sec_b, 7, &self.rows0);
                    }
                }
            }
            s if s == SignatureSet::WALSH => {
                walsh_spectrum_sorted_abs_into(f, &mut self.spec);
                self.sec_a.push(8);
                self.sec_a.push(self.spec.len() as u64);
                self.sec_a.extend(self.spec.iter().map(|&v| v as u64));
            }
            other => panic!("build_stage takes a single family, got {other}"),
        }
    }

    /// The shared `OCVℓ` stage: sorted counts once, both polarities
    /// derived. Output negation maps each count `c` on a face of
    /// `2^{n−ℓ}` points to `2^{n−ℓ} − c`, which reverses the sorted
    /// order.
    fn ocv_stage(&mut self, f: &TruthTable, tag: u64, arity: usize, build: Build) {
        ocv_sorted_into(f, arity, &mut self.counts);
        let n = f.num_vars();
        let face = if n >= arity { 1u64 << (n - arity) } else { 0 };
        match build {
            Build::Keep => push_section(&mut self.sec_a, tag, &self.counts),
            Build::Negate => push_complemented(&mut self.sec_a, tag, &self.counts, face),
            Build::Dual => {
                push_section(&mut self.sec_a, tag, &self.counts);
                push_complemented(&mut self.sec_b, tag, &self.counts, face);
            }
        }
    }
}

/// `OIV` and the sorted absolute Walsh spectrum are identical for `f`
/// and `¬f`, so a tied polarity stays tied through them.
fn stage_is_polarity_invariant(stage: SignatureSet) -> bool {
    stage == SignatureSet::OIV || stage == SignatureSet::WALSH
}

fn push_section(out: &mut Vec<u64>, tag: u64, data: &[u64]) {
    out.push(tag);
    out.push(data.len() as u64);
    out.extend_from_slice(data);
}

/// Pushes the section a sorted count vector becomes under output
/// negation: every count complements to `face − c` and the sorted order
/// reverses.
fn push_complemented(out: &mut Vec<u64>, tag: u64, sorted: &[u64], face: u64) {
    out.push(tag);
    out.push(sorted.len() as u64);
    out.extend(sorted.iter().rev().map(|&c| face - c));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msv::{msv_reference, raw_msv};
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kernel_msv_matches_reference_random() {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let mut kernel = SigKernel::new();
        let mut buf = Vec::new();
        for n in 0..=7usize {
            for _ in 0..8 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let set = SignatureSet::all_extended();
                kernel.msv_into(&f, set, &mut buf);
                assert_eq!(
                    buf.as_slice(),
                    msv_reference(&f, set).as_words(),
                    "n = {n}, f = {f}"
                );
            }
        }
    }

    #[test]
    fn derived_negation_is_bit_identical_to_raw() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let mut kernel = SigKernel::new();
        let mut buf = Vec::new();
        let set = SignatureSet::all_extended();
        for n in 0..=7usize {
            for _ in 0..8 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                kernel.raw_msv_into(&f, set, false, &mut buf);
                assert_eq!(buf.as_slice(), raw_msv(&f, set).as_words(), "keep, f = {f}");
                kernel.raw_msv_into(&f, set, true, &mut buf);
                assert_eq!(
                    buf.as_slice(),
                    raw_msv(&!&f, set).as_words(),
                    "negate, f = {f}"
                );
            }
        }
    }

    #[test]
    fn kernel_is_npn_invariant() {
        let mut rng = StdRng::seed_from_u64(0xA11);
        let mut kernel = SigKernel::new();
        for n in 1..=6usize {
            for _ in 0..8 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let g = NpnTransform::random(n, &mut rng).apply(&f);
                assert_eq!(
                    kernel.msv(&f, SignatureSet::all()),
                    kernel.msv(&g, SignatureSet::all()),
                    "n = {n}, f = {f}"
                );
            }
        }
    }

    #[test]
    fn stage_sections_match_reference_push() {
        use crate::msv::push_stage_sections;
        let mut rng = StdRng::seed_from_u64(0x5EC);
        let mut kernel = SigKernel::new();
        let mut buf = Vec::new();
        for n in 0..=6usize {
            let f = TruthTable::random(n, &mut rng).unwrap();
            let nf = !&f;
            for stage in STAGE_ORDER {
                let mut expect = Vec::new();
                push_stage_sections(&f, stage, &mut expect);
                kernel.stage_sections_into(&f, stage, false, &mut buf);
                assert_eq!(buf, expect, "n = {n}, stage = {stage}");

                let mut expect_neg = Vec::new();
                push_stage_sections(&nf, stage, &mut expect_neg);
                kernel.stage_sections_into(&f, stage, true, &mut buf);
                assert_eq!(buf, expect_neg, "negated, n = {n}, stage = {stage}");

                let (a, b) = kernel.stage_sections_dual(&f, stage);
                assert_eq!(a, expect.as_slice(), "dual keep, stage = {stage}");
                assert_eq!(b, expect_neg.as_slice(), "dual negate, stage = {stage}");
            }
        }
    }

    #[test]
    fn batched_msv_is_byte_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let mut kernel = SigKernel::new();
        for n in 0..=7usize {
            let fns: Vec<TruthTable> = (0..17)
                .map(|_| TruthTable::random(n, &mut rng).unwrap())
                .collect();
            for set in [
                SignatureSet::all(),
                SignatureSet::all_extended(),
                SignatureSet::OSV,
                SignatureSet::OSDV,
                SignatureSet::EMPTY,
            ] {
                let batched = kernel.msv_batch(&fns, set);
                for (f, b) in fns.iter().zip(&batched) {
                    assert_eq!(*b, kernel.msv(f, set), "n = {n}, set = {set}, f = {f}");
                }
            }
        }
    }

    #[test]
    fn balanced_ties_resolve_like_reference() {
        // Self-complementary-ish functions are the adversarial case:
        // the polarity tie survives many (or all) stages.
        let mut kernel = SigKernel::new();
        for f in [
            TruthTable::parity(4),
            TruthTable::majority(5),
            TruthTable::projection(4, 1).unwrap(),
        ] {
            for set in [
                SignatureSet::all(),
                SignatureSet::all_extended(),
                SignatureSet::OSV,
                SignatureSet::EMPTY,
            ] {
                assert_eq!(kernel.msv(&f, set), msv_reference(&f, set), "f = {f}");
                assert_eq!(kernel.msv(&!&f, set), kernel.msv(&f, set), "¬f, f = {f}");
            }
        }
    }
}
