//! # facepoint-sig
//!
//! Face and point signature vectors for NPN classification — the core
//! machinery of the DATE 2023 paper *"Rethinking NPN Classification from
//! Face and Point Characteristics of Boolean Functions"*
//! (arXiv:2301.12122).
//!
//! The paper views an `n`-variable Boolean function as an induced subgraph
//! of the hypercube `Q_n` and derives NPN-invariant *signature vectors*
//! from three complementary characteristics:
//!
//! | characteristic | geometric view | module | vectors |
//! |---|---|---|---|
//! | cofactor | a *face* of the cube | [`ocv1`]/[`ocv2`]/[`ocv`] | `OCVℓ` |
//! | influence | a *point–face* relation | [`influence`]/[`oiv`] | `OIV` |
//! | sensitivity | a *point* and its neighbours | [`osv`]/[`SensitivityProfile`] | `OSV`, `OSV0`, `OSV1` |
//! | sensitivity distance | pairs of points | [`osdv`]/[`Osdv`] | `OSDV`, `OSDV0`, `OSDV1` |
//!
//! Equality of each vector is *necessary* for NPN equivalence
//! (Theorems 1–4, executable in [`theorems`]), so the concatenated,
//! polarity-canonicalized [`msv`] can bucket functions into candidate NPN
//! classes with plain hashing — no transformation enumeration. The
//! [`spectral`] module adds the Walsh spectrum for comparison and powers
//! the fast `OSDV` engine.
//!
//! # Quick start
//!
//! ```
//! use facepoint_sig::{msv, oiv, osv1, SignatureSet};
//! use facepoint_truth::TruthTable;
//!
//! let maj = TruthTable::majority(3);
//! assert_eq!(oiv(&maj), vec![2, 2, 2]);        // Table I, row OIV
//! assert_eq!(osv1(&maj), vec![0, 2, 2, 2]);    // Table I, row OSV1
//!
//! // The full mixed signature vector used by the classifier:
//! let key = msv(&maj, SignatureSet::all());
//! assert!(!key.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod cofactor;
mod distance;
mod influence;
mod kernel;
mod msv;
mod sensitivity;
pub mod slices;
pub mod spectral;
pub mod symmetry;
pub mod theorems;

pub use cofactor::{ocv, ocv1, ocv2};
pub use distance::{
    auto_crossover, classic_crossover, osdv, osdv0, osdv1, osdv_from_profile, osdv_rows_into,
    osdv_with, MintermFilter, Osdv, OsdvEngine, OsdvScratch, AUTO_SPECTRAL_DIVISOR,
};
pub use influence::{influence, influences, oiv, total_influence};
pub use kernel::{MsvSink, SigKernel};
pub use msv::{msv, msv_reference, push_stage_sections, raw_msv, Msv, SignatureSet, STAGE_ORDER};
pub use sensitivity::{
    osv, osv0, osv1, osv_histogram, osv_histograms_by_value, sen, sen0, sen1, SensitivityProfile,
};
pub use slices::{transpose64, LANE_WIDTH};
