//! Variable symmetries of Boolean functions.
//!
//! Symmetry detection is the backbone of the canonical-form literature
//! the paper positions itself against (Kravets \[12\], Abdollahi \[10\],
//! Zhou \[5\], \[14\]): variables that are interchangeable (or
//! interchangeable after complementation) generate permutations that any
//! canonicalization search can skip. This module provides the two
//! classical pairwise notions plus the induced partition into symmetry
//! classes:
//!
//! * **NE (non-equivalence / ordinary) symmetry** `x_i ~ x_j`:
//!   `f` is invariant under swapping `x_i` and `x_j`, i.e.
//!   `f|_{x_i=0,x_j=1} = f|_{x_i=1,x_j=0}`;
//! * **E (equivalence / skew) symmetry** `x_i ~ ¬x_j`:
//!   `f` is invariant under swapping `x_i` with the *complement* of
//!   `x_j`, i.e. `f|_{x_i=0,x_j=0} = f|_{x_i=1,x_j=1}`.
//!
//! The NE relation is transitive on the support of `f` (swap generators
//! compose), so it partitions variables into *symmetry classes*; the
//! paper's hybrid baseline enumerates permutations only across those
//! classes.

use facepoint_truth::TruthTable;

/// Whether `f` is NE-symmetric in `(a, b)`: invariant under swapping the
/// two variables.
///
/// # Panics
///
/// Panics if `a` or `b` is out of range.
///
/// # Examples
///
/// ```
/// use facepoint_sig::symmetry::ne_symmetric;
/// use facepoint_truth::TruthTable;
///
/// let maj = TruthTable::majority(3);
/// assert!(ne_symmetric(&maj, 0, 2)); // majority is totally symmetric
///
/// let f = TruthTable::from_hex(2, "4")?; // x1 ∧ ¬x0
/// assert!(!ne_symmetric(&f, 0, 1));
/// # Ok::<(), facepoint_truth::Error>(())
/// ```
pub fn ne_symmetric(f: &TruthTable, a: usize, b: usize) -> bool {
    if a == b {
        return true;
    }
    // Invariance under the transposition ⇔ the (0,1) and (1,0) cofactors
    // agree ⇔ swapping the variables fixes the table.
    f.swap_vars(a, b) == *f
}

/// Whether `f` is E-symmetric (skew-symmetric) in `(a, b)`: invariant
/// under swapping `x_a` with `¬x_b`.
///
/// # Panics
///
/// Panics if `a` or `b` is out of range.
///
/// # Examples
///
/// ```
/// use facepoint_sig::symmetry::e_symmetric;
/// use facepoint_truth::TruthTable;
///
/// // f = x0 ∧ ¬x1 is E-symmetric in (0, 1): swapping x0 with ¬x1 fixes
/// // it.
/// let f = TruthTable::from_hex(2, "2")?;
/// assert!(e_symmetric(&f, 0, 1));
/// # Ok::<(), facepoint_truth::Error>(())
/// ```
pub fn e_symmetric(f: &TruthTable, a: usize, b: usize) -> bool {
    if a == b {
        // The degenerate pair reads "swap x_a with ¬x_a", i.e. negate the
        // input; invariance under it means f does not depend on x_a.
        return f.flip_var(a) == *f;
    }
    // flip-swap-flip realizes the skew transposition: the composite reads
    // f's variable a as ¬x_b and variable b as ¬x_a.
    let g = f.flip_var(a).swap_vars(a, b).flip_var(a);
    g == *f
}

/// The full pairwise symmetry report of a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetryReport {
    num_vars: usize,
    ne: Vec<bool>,
    e: Vec<bool>,
}

impl SymmetryReport {
    /// Analyzes all variable pairs of `f` (`O(n²)` table swaps).
    pub fn analyze(f: &TruthTable) -> Self {
        let n = f.num_vars();
        let idx = |a: usize, b: usize| a * n + b;
        let mut ne = vec![false; n * n];
        let mut e = vec![false; n * n];
        for a in 0..n {
            ne[idx(a, a)] = true;
            for b in (a + 1)..n {
                let s = ne_symmetric(f, a, b);
                ne[idx(a, b)] = s;
                ne[idx(b, a)] = s;
                let t = e_symmetric(f, a, b);
                e[idx(a, b)] = t;
                e[idx(b, a)] = t;
            }
        }
        SymmetryReport { num_vars: n, ne, e }
    }

    /// Whether variables `a` and `b` are NE-symmetric.
    pub fn ne(&self, a: usize, b: usize) -> bool {
        self.ne[a * self.num_vars + b]
    }

    /// Whether variables `a` and `b` are E-symmetric.
    pub fn e(&self, a: usize, b: usize) -> bool {
        self.e[a * self.num_vars + b]
    }

    /// Whether the function is totally symmetric (all pairs NE).
    pub fn is_totally_symmetric(&self) -> bool {
        (0..self.num_vars).all(|a| (a + 1..self.num_vars).all(|b| self.ne(a, b)))
    }

    /// The NE-symmetry classes: a partition of the variables where every
    /// in-class pair is NE-symmetric (classes listed in ascending order
    /// of their smallest member).
    pub fn symmetry_classes(&self) -> Vec<Vec<usize>> {
        let n = self.num_vars;
        let mut assigned = vec![false; n];
        let mut classes = Vec::new();
        for a in 0..n {
            if assigned[a] {
                continue;
            }
            let mut class = vec![a];
            assigned[a] = true;
            for (b, done) in assigned.iter_mut().enumerate().skip(a + 1) {
                if !*done && self.ne(a, b) {
                    class.push(b);
                    *done = true;
                }
            }
            classes.push(class);
        }
        classes
    }

    /// Number of permutations an exhaustive canonicalizer saves thanks to
    /// the symmetry classes: `n! / Π |class|!` orders remain distinct.
    pub fn distinct_orders(&self) -> u128 {
        let fact = |k: usize| -> u128 { (1..=k as u128).product() };
        let mut denom: u128 = 1;
        for class in self.symmetry_classes() {
            denom *= fact(class.len());
        }
        fact(self.num_vars) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_is_totally_symmetric() {
        let r = SymmetryReport::analyze(&TruthTable::majority(5));
        assert!(r.is_totally_symmetric());
        assert_eq!(r.symmetry_classes(), vec![vec![0, 1, 2, 3, 4]]);
        assert_eq!(r.distinct_orders(), 1);
    }

    #[test]
    fn parity_is_totally_symmetric_and_skew() {
        let r = SymmetryReport::analyze(&TruthTable::parity(4));
        assert!(r.is_totally_symmetric());
        // Parity is also E-symmetric in every pair: swapping x_i with
        // ¬x_j complements two inputs, preserving parity.
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert!(r.e(a, b), "({a},{b})");
            }
        }
    }

    #[test]
    fn asymmetric_function_has_singleton_classes() {
        // f = x0 ∧ (x1 ∨ x2): x1 and x2 are symmetric, x0 is not.
        let f = TruthTable::from_fn(3, |m| (m & 1 == 1) && (m & 0b110 != 0)).unwrap();
        let r = SymmetryReport::analyze(&f);
        assert!(r.ne(1, 2));
        assert!(!r.ne(0, 1));
        assert_eq!(r.symmetry_classes(), vec![vec![0], vec![1, 2]]);
        assert_eq!(r.distinct_orders(), 3); // 3!/2! = 3
    }

    #[test]
    fn ne_symmetry_matches_cofactor_definition() {
        // Textbook definition: f is NE-symmetric in (a,b) iff the (0,1)
        // and (1,0) restrictions coincide.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(211);
        for _ in 0..20 {
            let f = TruthTable::random(5, &mut rng).unwrap();
            for a in 0..5 {
                for b in (a + 1)..5 {
                    let c01 = f.restrict(a, false).restrict(b, true);
                    let c10 = f.restrict(a, true).restrict(b, false);
                    assert_eq!(ne_symmetric(&f, a, b), c01 == c10, "{f} ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn e_symmetry_matches_cofactor_definition() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(223);
        for _ in 0..20 {
            let f = TruthTable::random(5, &mut rng).unwrap();
            for a in 0..5 {
                for b in (a + 1)..5 {
                    let c00 = f.restrict(a, false).restrict(b, false);
                    let c11 = f.restrict(a, true).restrict(b, true);
                    assert_eq!(e_symmetric(&f, a, b), c00 == c11, "{f} ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn e_symmetric_diagonal_is_variable_independence() {
        let f = TruthTable::projection(3, 1).unwrap();
        assert!(e_symmetric(&f, 0, 0), "f ignores x0");
        assert!(!e_symmetric(&f, 1, 1), "f follows x1");
    }

    #[test]
    fn symmetric_variables_have_equal_influence() {
        use crate::influence::influence;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(227);
        for _ in 0..20 {
            let f = TruthTable::random(5, &mut rng).unwrap();
            let r = SymmetryReport::analyze(&f);
            for a in 0..5 {
                for b in (a + 1)..5 {
                    if r.ne(a, b) {
                        assert_eq!(influence(&f, a), influence(&f, b));
                    }
                }
            }
        }
    }
}
