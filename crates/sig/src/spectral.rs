//! Walsh–Hadamard transform and XOR autocorrelation.
//!
//! The fast Walsh–Hadamard transform (WHT) underlies two things here:
//!
//! * the *Walsh spectrum* signature, an alternative face-style signature
//!   the paper cites (\[7\] in its bibliography) and which we expose for
//!   completeness and ablation studies;
//! * the `O(n·2^n)` **XOR autocorrelation** used to compute the
//!   sensitivity-distance vectors ([`crate::Osdv`]) without enumerating
//!   all minterm pairs: for an indicator vector `a`,
//!   `r[d] = Σ_X a[X]·a[X⊕d] = WHT(WHT(a)²)[d] / 2^n`.

use facepoint_truth::TruthTable;

/// In-place fast Walsh–Hadamard transform (self-inverse up to the factor
/// `2^n`).
///
/// Uses the butterfly `(u, v) → (u + v, u − v)`; applying the transform
/// twice multiplies every entry by the length. With the `wide` cargo
/// feature the levels with stride `h ≥ 4` run four lanes at a time on
/// hand-rolled `[u64; 4]` vectors; two's-complement wrapping arithmetic
/// makes that path bit-for-bit identical to this scalar butterfly.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn wht_in_place(data: &mut [i64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "WHT length must be a power of two");
    let mut h = 1;
    while h < n {
        #[cfg(feature = "wide")]
        if h >= 4 {
            butterfly_level_wide(data, h);
            h *= 2;
            continue;
        }
        butterfly_level(data, h);
        h *= 2;
    }
}

/// One butterfly level at stride `h`: every `2h` block becomes
/// `(lo + hi, lo − hi)` element-wise.
#[inline]
fn butterfly_level(data: &mut [i64], h: usize) {
    for block in data.chunks_exact_mut(2 * h) {
        let (lo, hi) = block.split_at_mut(h);
        for (u, v) in lo.iter_mut().zip(hi.iter_mut()) {
            let a = *u;
            let b = *v;
            *u = a + b;
            *v = a - b;
        }
    }
}

/// Hand-rolled `u64x4`-as-`[u64; 4]` lanes for the `wide` feature: the
/// array form keeps the code std-only while giving the optimizer four
/// independent, alias-free lanes per step. Two's-complement wrapping
/// add/sub on `u64` is bitwise equal to `i64` add/sub, so results match
/// the scalar path exactly.
#[cfg(feature = "wide")]
mod wide_ops {
    /// Four 64-bit lanes, processed as one unit.
    pub(super) type U64x4 = [u64; 4];

    #[inline]
    pub(super) fn add4(a: U64x4, b: U64x4) -> U64x4 {
        [
            a[0].wrapping_add(b[0]),
            a[1].wrapping_add(b[1]),
            a[2].wrapping_add(b[2]),
            a[3].wrapping_add(b[3]),
        ]
    }

    #[inline]
    pub(super) fn sub4(a: U64x4, b: U64x4) -> U64x4 {
        [
            a[0].wrapping_sub(b[0]),
            a[1].wrapping_sub(b[1]),
            a[2].wrapping_sub(b[2]),
            a[3].wrapping_sub(b[3]),
        ]
    }
}

/// One butterfly level at stride `h ≥ 4`, four lanes at a time.
#[cfg(feature = "wide")]
#[inline]
fn butterfly_level_wide(data: &mut [i64], h: usize) {
    use wide_ops::{add4, sub4, U64x4};
    debug_assert!(h >= 4 && h.is_power_of_two());
    for block in data.chunks_exact_mut(2 * h) {
        let (lo, hi) = block.split_at_mut(h);
        for (u, v) in lo.chunks_exact_mut(4).zip(hi.chunks_exact_mut(4)) {
            let a: U64x4 = [u[0] as u64, u[1] as u64, u[2] as u64, u[3] as u64];
            let b: U64x4 = [v[0] as u64, v[1] as u64, v[2] as u64, v[3] as u64];
            let s = add4(a, b);
            let d = sub4(a, b);
            u[0] = s[0] as i64;
            u[1] = s[1] as i64;
            u[2] = s[2] as i64;
            u[3] = s[3] as i64;
            v[0] = d[0] as i64;
            v[1] = d[1] as i64;
            v[2] = d[2] as i64;
            v[3] = d[3] as i64;
        }
    }
}

/// The Walsh spectrum of a Boolean function in ±1 encoding:
/// `W[s] = Σ_X (−1)^{f(X)} (−1)^{s·X}`.
///
/// Equality of sorted absolute spectra is a classical necessary condition
/// for NPN equivalence (spectral Boolean matching).
pub fn walsh_spectrum(f: &TruthTable) -> Vec<i64> {
    let mut data = Vec::new();
    walsh_spectrum_into(f, &mut data);
    data
}

/// Writes the Walsh spectrum into `out`, reusing its allocation — the
/// allocation-free form of [`walsh_spectrum`].
pub fn walsh_spectrum_into(f: &TruthTable, out: &mut Vec<i64>) {
    let len = f.num_bits() as usize;
    out.clear();
    out.resize(len, 0);
    for m in 0..len as u64 {
        out[m as usize] = if f.bit(m) { -1 } else { 1 };
    }
    wht_in_place(out);
}

/// Sorted absolute Walsh spectrum — a permutation/phase invariant vector.
///
/// Also invariant under output negation (`W(¬f) = −W(f)` pointwise), so
/// the signature kernel emits one spectrum for both polarities.
pub fn walsh_spectrum_sorted_abs(f: &TruthTable) -> Vec<i64> {
    let mut s = Vec::new();
    walsh_spectrum_sorted_abs_into(f, &mut s);
    s
}

/// Writes the sorted absolute Walsh spectrum into `out`, reusing its
/// allocation — the allocation-free form of
/// [`walsh_spectrum_sorted_abs`].
pub fn walsh_spectrum_sorted_abs_into(f: &TruthTable, out: &mut Vec<i64>) {
    walsh_spectrum_into(f, out);
    for v in out.iter_mut() {
        *v = v.abs();
    }
    out.sort_unstable();
}

/// XOR autocorrelation of a 0/1 indicator vector given as bit-packed words:
/// returns `r` with `r[d] = |{X : a[X] = a[X⊕d] = 1}|` (ordered pairs,
/// `r[0]` equals the popcount).
///
/// # Panics
///
/// Panics if `2^num_vars` exceeds `64 * words.len()`.
pub fn xor_autocorrelation(words: &[u64], num_vars: usize) -> Vec<i64> {
    let mut data = Vec::new();
    xor_autocorrelation_into(words, num_vars, &mut data);
    data
}

/// Writes the XOR autocorrelation into `out`, reusing its allocation —
/// the allocation-free form of [`xor_autocorrelation`].
///
/// # Panics
///
/// Panics if `2^num_vars` exceeds `64 * words.len()`.
pub fn xor_autocorrelation_into(words: &[u64], num_vars: usize, out: &mut Vec<i64>) {
    let len = 1usize << num_vars;
    assert!(len <= words.len() * 64, "indicator shorter than 2^n bits");
    out.clear();
    out.resize(len, 0);
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = ((words[i / 64] >> (i % 64)) & 1) as i64;
    }
    wht_in_place(out);
    for v in out.iter_mut() {
        *v *= *v;
    }
    wht_in_place(out);
    for v in out.iter_mut() {
        debug_assert_eq!(*v % len as i64, 0, "autocorrelation must divide evenly");
        *v /= len as i64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wht_involution() {
        let mut data: Vec<i64> = (0..16).map(|i| (i * i - 5) as i64).collect();
        let orig = data.clone();
        wht_in_place(&mut data);
        wht_in_place(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            assert_eq!(*a, b * 16);
        }
    }

    #[test]
    fn parseval() {
        let f = TruthTable::from_hex(4, "ca53").unwrap();
        let spec = walsh_spectrum(&f);
        let energy: i64 = spec.iter().map(|v| v * v).sum();
        assert_eq!(energy, 16 * 16, "Σ W² = 2^{{2n}}");
    }

    #[test]
    fn spectrum_of_parity_is_concentrated() {
        let f = TruthTable::parity(4);
        let spec = walsh_spectrum(&f);
        // Parity correlates only with the full-support character.
        for (s, w) in spec.iter().enumerate() {
            if s == 0b1111 {
                assert_eq!(w.abs(), 16);
            } else {
                assert_eq!(*w, 0, "index {s}");
            }
        }
    }

    #[test]
    fn sorted_abs_spectrum_is_npn_invariant_sample() {
        use facepoint_truth::NpnTransform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let f = TruthTable::random(5, &mut rng).unwrap();
            let t = NpnTransform::random(5, &mut rng);
            let g = t.apply(&f);
            assert_eq!(walsh_spectrum_sorted_abs(&f), walsh_spectrum_sorted_abs(&g));
        }
    }

    #[test]
    fn autocorrelation_counts_pairs() {
        // Indicator {000, 011, 101} of a 3-cube.
        let words = [0b0010_1001u64];
        let r = xor_autocorrelation(&words, 3);
        assert_eq!(r[0], 3, "r[0] = popcount");
        // d = 011: pairs (000,011) both ways → 2.
        assert_eq!(r[0b011], 2);
        assert_eq!(r[0b101], 2);
        assert_eq!(r[0b110], 2); // (011, 101)
        assert_eq!(r[0b001], 0);
        let total: i64 = r.iter().sum();
        assert_eq!(total, 9, "Σ_d r[d] = popcount²");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn wht_rejects_non_power_of_two() {
        let mut data = vec![1i64; 6];
        wht_in_place(&mut data);
    }
}
