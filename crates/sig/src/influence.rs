//! Boolean influence — the *point–face* characteristic
//! (Definition 5 of the paper).
//!
//! The influence of variable `x_i` measures how often flipping `x_i` flips
//! the function: geometrically, how many minterms of one `x_i`-face differ
//! from their mirror image on the opposite face. Following the paper's
//! footnote we keep the integer form
//! `inf(f, i) = |{X : f(X) ≠ f(X^i)}| / 2` (the set size is always even:
//! sensitive pairs are counted from both endpoints).
//!
//! Influence is invariant under the **full** NPN group (Theorem 1 plus the
//! observation that `f(X) ≠ f(X^i)` is unchanged by complementing `f`),
//! which makes [`oiv`] the cheapest fully NPN-invariant vector in the
//! paper's toolbox.

use facepoint_truth::words::{flip_var_word, WORD_VARS};
use facepoint_truth::TruthTable;

/// The integer influence of variable `var`:
/// `|{X : f(X) ≠ f(X ⊕ e_var)}| / 2` — a masked popcount of the Boolean
/// derivative `f ⊕ f[x←¬x]`, formed word-by-word so no flipped table is
/// ever materialized.
///
/// # Panics
///
/// Panics if `var >= num_vars`.
///
/// # Examples
///
/// ```
/// use facepoint_sig::influence;
/// use facepoint_truth::TruthTable;
///
/// let maj = TruthTable::majority(3);
/// assert_eq!(influence(&maj, 0), 2); // Table I: OIV(f1) = (2,2,2)
/// ```
pub fn influence(f: &TruthTable, var: usize) -> u32 {
    assert!(var < f.num_vars(), "variable index in range");
    let words = f.words();
    let c: u32 = if var < WORD_VARS {
        words
            .iter()
            .map(|&w| (w ^ flip_var_word(w, var)).count_ones())
            .sum()
    } else {
        let bit = 1usize << (var - WORD_VARS);
        (0..words.len())
            .map(|i| (words[i] ^ words[i ^ bit]).count_ones())
            .sum()
    };
    debug_assert_eq!(c % 2, 0, "derivative popcount is even");
    c / 2
}

/// Writes the sorted influence multiset (`OIV`) into `out` as `u64`s,
/// reusing its allocation — the signature kernel's section builder.
pub(crate) fn oiv_sorted_into(f: &TruthTable, out: &mut Vec<u64>) {
    out.clear();
    out.extend((0..f.num_vars()).map(|v| influence(f, v) as u64));
    out.sort_unstable();
}

/// Influences of all variables, unsorted (index `i` holds `inf(f, i)`).
pub fn influences(f: &TruthTable) -> Vec<u32> {
    (0..f.num_vars()).map(|v| influence(f, v)).collect()
}

/// The ordered influence vector `OIV(f)` (Definition 7): sorted multiset
/// of all variable influences.
///
/// # Examples
///
/// ```
/// use facepoint_sig::oiv;
/// use facepoint_truth::TruthTable;
///
/// // Table I: OIV of the projection f3 = x2 is (0, 0, 4).
/// let f3 = TruthTable::projection(3, 2)?;
/// assert_eq!(oiv(&f3), vec![0, 0, 4]);
/// # Ok::<(), facepoint_truth::Error>(())
/// ```
pub fn oiv(f: &TruthTable) -> Vec<u32> {
    let mut v = influences(f);
    v.sort_unstable();
    v
}

/// The total influence `inf(f) = Σ_i inf(f, i)` (Definition 5).
pub fn total_influence(f: &TruthTable) -> u64 {
    influences(f).iter().map(|&v| v as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table1_values() {
        assert_eq!(oiv(&TruthTable::majority(3)), vec![2, 2, 2]);
        assert_eq!(oiv(&TruthTable::projection(3, 2).unwrap()), vec![0, 0, 4]);
    }

    #[test]
    fn parity_has_maximal_influence() {
        // Flipping any input of XOR always flips the output.
        let f = TruthTable::parity(5);
        assert_eq!(oiv(&f), vec![16; 5]); // 2^{n-1} each
        assert_eq!(total_influence(&f), 5 * 16);
    }

    #[test]
    fn constants_have_zero_influence() {
        let f = TruthTable::one(4).unwrap();
        assert_eq!(oiv(&f), vec![0; 4]);
    }

    #[test]
    fn influence_ignores_output_phase() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let f = TruthTable::random(6, &mut rng).unwrap();
            assert_eq!(oiv(&f), oiv(&!&f));
        }
    }

    #[test]
    fn theorem1_oiv_npn_invariance() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let f = TruthTable::random(6, &mut rng).unwrap();
            let t = NpnTransform::random(6, &mut rng);
            assert_eq!(oiv(&f), oiv(&t.apply(&f)), "transform {t}");
        }
    }

    #[test]
    fn lemma1_pointwise_permuted_influence() {
        // Lemma 1: influences permute along the variable mapping.
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..20 {
            let f = TruthTable::random(5, &mut rng).unwrap();
            let t = NpnTransform::random(5, &mut rng);
            let g = t.apply(&f);
            // g reads f's variable i at position perm[i]:
            // inf(g, perm[i]) == inf(f, i).
            for i in 0..5 {
                assert_eq!(influence(&g, t.perm().map(i)), influence(&f, i));
            }
        }
    }

    #[test]
    fn influence_bounded_by_half_cube() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let f = TruthTable::random(7, &mut rng).unwrap();
            for v in 0..7 {
                assert!(influence(&f, v) <= 64);
            }
        }
    }
}
