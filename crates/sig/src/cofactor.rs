//! Ordered cofactor vectors (`OCV`) — the *face* signatures
//! (Definition 6 of the paper).
//!
//! The ℓ-ary ordered cofactor vector collects the satisfy counts of every
//! cofactor obtained by fixing ℓ distinct variables to every one of the
//! `2^ℓ` constant assignments, sorted in non-decreasing order. Equality of
//! `OCVℓ` for every ℓ is a classical canonical form (Abdollahi et al.,
//! cited as \[3\]); equality for any fixed ℓ is a necessary condition for
//! NPN equivalence *up to output phase* (output negation maps each count
//! `c` to `2^{n-ℓ} − c`).

use facepoint_truth::words::var_mask_word;
use facepoint_truth::TruthTable;

/// The 1-ary ordered cofactor vector: sorted multiset
/// `{|f_{x_i = v}| : i < n, v ∈ {0,1}}` of length `2n`.
///
/// # Examples
///
/// ```
/// use facepoint_sig::ocv1;
/// use facepoint_truth::TruthTable;
///
/// // Table I of the paper: OCV1 of the 3-majority is (1,1,1,3,3,3).
/// assert_eq!(ocv1(&TruthTable::majority(3)), vec![1, 1, 1, 3, 3, 3]);
/// ```
pub fn ocv1(f: &TruthTable) -> Vec<u32> {
    let n = f.num_vars();
    let mut v = Vec::with_capacity(2 * n);
    for var in 0..n {
        v.push(f.cofactor_count(var, false) as u32);
        v.push(f.cofactor_count(var, true) as u32);
    }
    v.sort_unstable();
    v
}

/// The 2-ary ordered cofactor vector: sorted multiset of the
/// `4·C(n,2) = 2n(n−1)` two-variable cofactor counts.
///
/// # Examples
///
/// ```
/// use facepoint_sig::ocv2;
/// use facepoint_truth::TruthTable;
///
/// // Table I: OCV2 of the 3-majority is (0,0,0,1,1,1,1,1,1,2,2,2).
/// assert_eq!(
///     ocv2(&TruthTable::majority(3)),
///     vec![0, 0, 0, 1, 1, 1, 1, 1, 1, 2, 2, 2]
/// );
/// ```
pub fn ocv2(f: &TruthTable) -> Vec<u32> {
    let n = f.num_vars();
    let mut v = Vec::with_capacity(2 * n * n.saturating_sub(1));
    for i in 0..n {
        for j in (i + 1)..n {
            for assign in 0..4u8 {
                let vi = assign & 1 == 1;
                let vj = assign & 2 == 2;
                v.push(f.cofactor_count_multi(&[i, j], &[vi, vj]) as u32);
            }
        }
    }
    v.sort_unstable();
    v
}

/// The general ℓ-ary ordered cofactor vector (`C(n,ℓ)·2^ℓ` entries).
///
/// `ocv(f, 0)` is the one-element vector `[|f|]` (the 0-ary cofactor
/// signature); `ocv(f, n)` enumerates all minterms.
///
/// # Panics
///
/// Panics if `arity > num_vars`.
pub fn ocv(f: &TruthTable, arity: usize) -> Vec<u32> {
    let n = f.num_vars();
    assert!(arity <= n, "cofactor arity {arity} exceeds {n} variables");
    if arity == 0 {
        return vec![f.count_ones() as u32];
    }
    let mut v = Vec::new();
    let mut combo: Vec<usize> = (0..arity).collect();
    loop {
        for assign in 0..(1u32 << arity) {
            let values: Vec<bool> = (0..arity).map(|k| (assign >> k) & 1 == 1).collect();
            v.push(f.cofactor_count_multi(&combo, &values) as u32);
        }
        if !next_combination(&mut combo, n) {
            v.sort_unstable();
            return v;
        }
    }
}

/// Writes the sorted ℓ-ary cofactor counts (ℓ ≤ 3) into `out` as
/// `u64`s, reusing its allocation — the signature kernel's section
/// builder. Stack-allocated combination state keeps the whole
/// computation heap-free. Produces an empty vector when `arity >
/// num_vars` (only reachable for `OCV1`/`OCV2` on degenerate arities;
/// the `OCV3` stage is skipped entirely below three variables).
pub(crate) fn ocv_sorted_into(f: &TruthTable, arity: usize, out: &mut Vec<u64>) {
    debug_assert!((1..=3).contains(&arity), "kernel OCV arity is 1..=3");
    let n = f.num_vars();
    out.clear();
    if arity > n {
        return;
    }
    match arity {
        1 => {
            // One masked sweep per variable; the other polarity is the
            // satisfy-count complement.
            let total = f.count_ones();
            for var in 0..n {
                let c1 = f.cofactor_count(var, true);
                out.push(total - c1);
                out.push(c1);
            }
        }
        2 => {
            // All four counts of a variable pair in a single sweep.
            for i in 0..n {
                for j in (i + 1)..n {
                    let (mut c00, mut c01, mut c10, mut c11) = (0u64, 0u64, 0u64, 0u64);
                    for (wi, &w) in f.words().iter().enumerate() {
                        let mi = var_mask_word(i, wi);
                        let mj = var_mask_word(j, wi);
                        let w1 = w & mi;
                        let w0 = w & !mi;
                        c11 += (w1 & mj).count_ones() as u64;
                        c01 += (w0 & mj).count_ones() as u64;
                        c10 += (w1 & !mj).count_ones() as u64;
                        c00 += (w0 & !mj).count_ones() as u64;
                    }
                    out.extend([c00, c10, c01, c11]);
                }
            }
        }
        _ => {
            // Generic path with stack-allocated combination state.
            let mut combo_buf = [0usize; 3];
            let combo = &mut combo_buf[..arity];
            for (k, c) in combo.iter_mut().enumerate() {
                *c = k;
            }
            let mut values = [false; 3];
            loop {
                for assign in 0..(1u32 << arity) {
                    for (k, v) in values[..arity].iter_mut().enumerate() {
                        *v = (assign >> k) & 1 == 1;
                    }
                    out.push(f.cofactor_count_multi(combo, &values[..arity]));
                }
                if !next_combination(combo, n) {
                    break;
                }
            }
        }
    }
    out.sort_unstable();
}

/// Advances `combo` (strictly increasing indices into `0..n`) to its
/// lexicographic successor; returns `false` when exhausted.
fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] < n - k + i {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r = 1usize;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn table1_majority_values() {
        let f1 = TruthTable::majority(3);
        assert_eq!(ocv1(&f1), vec![1, 1, 1, 3, 3, 3]);
        assert_eq!(ocv2(&f1), vec![0, 0, 0, 1, 1, 1, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn table1_projection_values() {
        // f3 of Fig. 1c is the single-variable projection (see DESIGN.md).
        let f3 = TruthTable::projection(3, 2).unwrap();
        assert_eq!(ocv1(&f3), vec![0, 2, 2, 2, 2, 4]);
        assert_eq!(ocv2(&f3), vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn lengths_match_definition() {
        let f = TruthTable::from_hex(5, "deadbeef").unwrap();
        for l in 0..=5usize {
            assert_eq!(
                ocv(&f, l).len(),
                binomial(5, l) << l,
                "|OCV{l}| = C(n,l)·2^l"
            );
        }
    }

    #[test]
    fn general_matches_fast_paths() {
        let f = TruthTable::from_hex(4, "9b1c").unwrap();
        assert_eq!(ocv(&f, 1), ocv1(&f));
        assert_eq!(ocv(&f, 2), ocv2(&f));
        assert_eq!(ocv(&f, 0), vec![f.count_ones() as u32]);
    }

    #[test]
    fn full_arity_counts_are_bits() {
        let f = TruthTable::from_hex(3, "e8").unwrap();
        let v = ocv(&f, 3);
        // Every n-ary cofactor fixes all variables: counts are 0/1 and sum
        // to |f|.
        assert_eq!(v.len(), 8);
        assert_eq!(v.iter().sum::<u32>(), 4);
        assert!(v.iter().all(|&c| c <= 1));
    }

    #[test]
    fn sorted_into_matches_public_ocv() {
        let f = TruthTable::from_hex(5, "cafe1234").unwrap();
        let mut out = Vec::new();
        for arity in 1..=3usize {
            ocv_sorted_into(&f, arity, &mut out);
            let expect: Vec<u64> = ocv(&f, arity).iter().map(|&c| c as u64).collect();
            assert_eq!(out, expect, "arity {arity}");
        }
        let tiny = TruthTable::from_u64(1, 0b10).unwrap();
        ocv_sorted_into(&tiny, 2, &mut out);
        assert!(out.is_empty(), "arity above n yields an empty vector");
    }

    #[test]
    fn np_invariance_spot_check() {
        use facepoint_truth::NpnTransform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let f = TruthTable::random(5, &mut rng).unwrap();
            // NP only (no output negation) preserves every OCV level.
            let mut t = NpnTransform::random(5, &mut rng);
            if t.output_neg() {
                t = NpnTransform::new(t.perm().clone(), t.input_neg(), false);
            }
            let g = t.apply(&f);
            assert_eq!(ocv1(&f), ocv1(&g));
            assert_eq!(ocv2(&f), ocv2(&g));
            assert_eq!(ocv(&f, 3), ocv(&g, 3));
        }
    }
}
