//! Bit-sliced batch lanes: up to 64 truth tables processed word-parallel.
//!
//! The kernel's per-function sweep packs one function's `2^n` minterms
//! into `u64` words. This module flips that layout: a **lane batch**
//! transposes up to [`LANE_WIDTH`] same-arity tables into `2^n` words
//! where *bit `k` of word `m` is function `k`'s value at minterm `m`*.
//! In transposed space the whole batch moves in lockstep:
//!
//! * the sensitivity derivative at minterm `m` along variable `v` is one
//!   XOR, `lanes[m] ^ lanes[m ^ (1 << v)]`, uniform across all 64
//!   functions and all variables (no in-word shuffling for the low
//!   `log₂ 64` variables);
//! * per-minterm sensitivity counts accumulate in five carry-save bit
//!   planes, 64 counters per plane word;
//! * a sensitivity level's membership mask and its two polarity groups
//!   (`eq & lanes`, `eq & !lanes`) are three bitwise ops per word for
//!   the whole batch.
//!
//! The per-level group indicators are then transposed back
//! ([`transpose64`] again) into per-function packed form and fed to the
//! weight-binned spectral tail of [`crate::osdv_rows_into`]'s module —
//! see `ARCHITECTURE.md` for the cost model. All buffers live in the
//! [`crate::SigKernel`] and are reused across batches, so the steady
//! state allocates nothing.

use crate::distance::{count_level_pairs, OsdvEngine, OsdvScratch};
use facepoint_truth::words::word_count;
use facepoint_truth::TruthTable;

/// Maximum number of functions per lane batch: one bit lane per `u64`
/// position.
pub const LANE_WIDTH: usize = 64;

/// Carry-save bit planes per minterm counter; sensitivities reach at
/// most `MAX_VARS = 16 < 2^5`.
const PLANES: usize = 5;

/// In-place 64×64 bit-matrix transpose (recursive delta-swap scheme,
/// Hacker's Delight §7-3): afterwards bit `j` of word `i` is the former
/// bit `i` of word `j`.
pub fn transpose64(a: &mut [u64; 64]) {
    // Per level `j`, swap index bit `j` between row and column: rows
    // with bit `j` clear exchange their high-half columns (mask `m`,
    // the columns with bit `j` set) with the partner row's low half.
    // LSB-first column order, hence the up-shift variant of the scheme.
    let mut j = 32usize;
    let mut m = 0xFFFF_FFFF_0000_0000u64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] ^ (a[k + j] << j)) & m;
            a[k] ^= t;
            a[k + j] ^= t >> j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m >> j;
    }
}

/// A loaded batch of up to 64 same-arity truth tables in transposed
/// (bit-sliced) form, plus the per-function point sections computed
/// from it.
///
/// Lifecycle: [`LaneBatch::load_with`] transposes the tables and builds
/// the batch sensitivity planes; [`LaneBatch::point_sections`] walks the
/// sensitivity levels once for the whole batch and fills per-function
/// `OSV0/1` histograms and `OSDV0/1` row matrices, which
/// `SigKernel::msv_to_batched` then serializes per slot.
#[derive(Debug, Clone)]
pub(crate) struct LaneBatch {
    /// Number of live functions (1..=64).
    width: usize,
    /// Common arity of the batch.
    num_vars: usize,
    /// Copies of the loaded tables' words (`width × word_count`), kept
    /// to validate slot lookups in debug builds.
    tables: Vec<u64>,
    /// Transposed truth lanes: bit `k` of `lanes[m]` is `f_k(m)`.
    lanes: Vec<u64>,
    /// Carry-save sensitivity counters, plane-major (`PLANES × 2^n`).
    planes: Vec<u64>,
    /// Transposed 0-/1-polarity group indicators of the current level.
    g0t: Vec<u64>,
    g1t: Vec<u64>,
    /// Per-function packed group indicators (`width × word_count`).
    g0f: Vec<u64>,
    g1f: Vec<u64>,
    /// Per-function `OSV0`/`OSV1` histograms (`width × (n+1)`).
    hist0: Vec<u64>,
    hist1: Vec<u64>,
    /// Per-function `OSDV0`/`OSDV1` row matrices (`width × (n+1)·n`).
    rows0: Vec<u64>,
    rows1: Vec<u64>,
    /// 64-word transpose staging block.
    block: Box<[u64; 64]>,
}

impl Default for LaneBatch {
    fn default() -> Self {
        Self {
            width: 0,
            num_vars: 0,
            tables: Vec::new(),
            lanes: Vec::new(),
            planes: Vec::new(),
            g0t: Vec::new(),
            g1t: Vec::new(),
            g0f: Vec::new(),
            g1f: Vec::new(),
            hist0: Vec::new(),
            hist1: Vec::new(),
            rows0: Vec::new(),
            rows1: Vec::new(),
            block: Box::new([0; 64]),
        }
    }
}

impl LaneBatch {
    /// Loads `width` tables (resolved through `at`) into transposed
    /// lane form and rebuilds the batch sensitivity planes.
    ///
    /// The accessor indirection lets callers batch non-contiguous
    /// tables (the engine batches the cache misses of a chunk) without
    /// collecting them into a temporary slice.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=LANE_WIDTH` or the tables do
    /// not all share one arity.
    pub(crate) fn load_with<'a>(&mut self, width: usize, at: impl Fn(usize) -> &'a TruthTable) {
        assert!(
            (1..=LANE_WIDTH).contains(&width),
            "lane batch width {width} not in 1..={LANE_WIDTH}"
        );
        let n = at(0).num_vars();
        let wc = word_count(n);
        let len = 1usize << n;
        self.width = width;
        self.num_vars = n;
        self.tables.clear();
        for k in 0..width {
            let f = at(k);
            assert_eq!(f.num_vars(), n, "mixed arities in one lane batch");
            self.tables.extend_from_slice(f.words());
        }
        self.lanes.clear();
        self.lanes.resize(len, 0);
        let blocks = len.div_ceil(64);
        for b in 0..blocks {
            for k in 0..LANE_WIDTH {
                self.block[k] = if k < width {
                    self.tables[k * wc + b]
                } else {
                    0
                };
            }
            transpose64(&mut self.block);
            let take = (len - b * 64).min(64);
            self.lanes[b * 64..b * 64 + take].copy_from_slice(&self.block[..take]);
        }
        self.compute_planes();
    }

    /// Word-parallel batch sensitivity: for every variable, one XOR per
    /// minterm pair yields the derivative of all 64 functions at once;
    /// the per-minterm counts accumulate in carry-save planes.
    fn compute_planes(&mut self) {
        let n = self.num_vars;
        let len = 1usize << n;
        self.planes.clear();
        self.planes.resize(PLANES * len, 0);
        for var in 0..n {
            let bit = 1usize << var;
            for m in 0..len {
                if m & bit != 0 {
                    continue;
                }
                // The derivative is symmetric: both endpoints of the
                // edge gain the same 64-lane increment.
                let d = self.lanes[m] ^ self.lanes[m | bit];
                if d == 0 {
                    continue;
                }
                for idx in [m, m | bit] {
                    let mut carry = d;
                    let mut p = 0;
                    while carry != 0 {
                        debug_assert!(p < PLANES, "sensitivity overflowed {PLANES} planes");
                        let slot = &mut self.planes[p * len + idx];
                        let t = *slot & carry;
                        *slot ^= carry;
                        carry = t;
                        p += 1;
                    }
                }
            }
        }
    }

    /// Computes `OSV0/1` histograms and `OSDV0/1` rows for every loaded
    /// function in one sweep over the sensitivity levels.
    ///
    /// Per level: the membership mask of all 64 functions is an AND
    /// chain over the five planes, the polarity split is two more ANDs,
    /// and one transpose-back yields each function's packed group
    /// indicators for [`count_level_pairs`].
    pub(crate) fn point_sections(&mut self, engine: OsdvEngine, scratch: &mut OsdvScratch) {
        let Self {
            width,
            num_vars,
            lanes,
            planes,
            g0t,
            g1t,
            g0f,
            g1f,
            hist0,
            hist1,
            rows0,
            rows1,
            block,
            ..
        } = self;
        let (width, n) = (*width, *num_vars);
        let len = 1usize << n;
        let wc = word_count(n);
        let wmask = if width == LANE_WIDTH {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let h_stride = n + 1;
        let r_stride = (n + 1) * n;
        hist0.clear();
        hist0.resize(width * h_stride, 0);
        hist1.clear();
        hist1.resize(width * h_stride, 0);
        rows0.clear();
        rows0.resize(width * r_stride, 0);
        rows1.clear();
        rows1.resize(width * r_stride, 0);
        g0t.clear();
        g0t.resize(len, 0);
        g1t.clear();
        g1t.resize(len, 0);
        g0f.clear();
        g0f.resize(width * wc, 0);
        g1f.clear();
        g1f.resize(width * wc, 0);
        let blocks = len.div_ceil(64);
        for s in 0..=n {
            for m in 0..len {
                let mut e = wmask;
                for (p, plane) in planes.chunks_exact(len).enumerate() {
                    let pw = plane[m];
                    e &= if (s >> p) & 1 == 1 { pw } else { !pw };
                }
                g1t[m] = e & lanes[m];
                g0t[m] = e & !lanes[m];
            }
            for (src, dst) in [(&*g0t, &mut *g0f), (&*g1t, &mut *g1f)] {
                for b in 0..blocks {
                    let take = (len - b * 64).min(64);
                    block[..take].copy_from_slice(&src[b * 64..b * 64 + take]);
                    block[take..].fill(0);
                    transpose64(block);
                    for k in 0..width {
                        dst[k * wc + b] = block[k];
                    }
                }
            }
            for k in 0..width {
                let g0 = &g0f[k * wc..(k + 1) * wc];
                let g1 = &g1f[k * wc..(k + 1) * wc];
                let pop0: u64 = g0.iter().map(|w| w.count_ones() as u64).sum();
                let pop1: u64 = g1.iter().map(|w| w.count_ones() as u64).sum();
                hist0[k * h_stride + s] = pop0;
                hist1[k * h_stride + s] = pop1;
                if n == 0 {
                    continue;
                }
                count_level_pairs(
                    n,
                    engine,
                    g0,
                    pop0,
                    g1,
                    pop1,
                    &mut scratch.members,
                    &mut scratch.tail,
                    &mut rows0[k * r_stride + s * n..k * r_stride + (s + 1) * n],
                    &mut rows1[k * r_stride + s * n..k * r_stride + (s + 1) * n],
                );
            }
        }
    }

    /// The `OSV0`/`OSV1` histograms of slot `slot`.
    pub(crate) fn hists(&self, slot: usize) -> (&[u64], &[u64]) {
        let h = self.num_vars + 1;
        (
            &self.hist0[slot * h..(slot + 1) * h],
            &self.hist1[slot * h..(slot + 1) * h],
        )
    }

    /// The `OSDV0`/`OSDV1` row matrices of slot `slot`.
    pub(crate) fn rows(&self, slot: usize) -> (&[u64], &[u64]) {
        let r = (self.num_vars + 1) * self.num_vars;
        (
            &self.rows0[slot * r..(slot + 1) * r],
            &self.rows1[slot * r..(slot + 1) * r],
        )
    }

    /// Whether `slot` holds exactly this table (debug-build guard for
    /// the slot-addressed serialization API).
    pub(crate) fn slot_matches(&self, slot: usize, f: &TruthTable) -> bool {
        let wc = word_count(self.num_vars);
        slot < self.width
            && f.num_vars() == self.num_vars
            && self.tables[slot * wc..(slot + 1) * wc] == *f.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::osdv_point_sections_into;
    use crate::sensitivity::SensitivityProfile;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn transpose_is_an_involution() {
        let mut rng = StdRng::seed_from_u64(0x7a05);
        let mut a = [0u64; 64];
        for w in a.iter_mut() {
            *w = rng.random();
        }
        let orig = a;
        transpose64(&mut a);
        // Spot-check the defining property on a few coordinates.
        for (i, j) in [(0, 0), (1, 7), (63, 2), (31, 63), (40, 40)] {
            assert_eq!((a[j] >> i) & 1, (orig[i] >> j) & 1, "bit ({i}, {j})");
        }
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn batch_sections_match_scalar_fused_sweep() {
        let mut rng = StdRng::seed_from_u64(0xba7c);
        let mut batch = LaneBatch::default();
        let mut scratch = OsdvScratch::default();
        let mut sc2 = OsdvScratch::default();
        let (mut r0, mut r1, mut h0, mut h1) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for n in 0..=7usize {
            for width in [1usize, 2, 63, 64] {
                let fns: Vec<TruthTable> = (0..width)
                    .map(|_| TruthTable::random(n, &mut rng).unwrap())
                    .collect();
                batch.load_with(fns.len(), |i| &fns[i]);
                batch.point_sections(OsdvEngine::Auto, &mut scratch);
                for (k, f) in fns.iter().enumerate() {
                    assert!(batch.slot_matches(k, f));
                    let prof = SensitivityProfile::compute(f);
                    osdv_point_sections_into(
                        f,
                        &prof,
                        OsdvEngine::Auto,
                        &mut sc2,
                        &mut r0,
                        &mut r1,
                        &mut h0,
                        &mut h1,
                    );
                    let (bh0, bh1) = batch.hists(k);
                    let (br0, br1) = batch.rows(k);
                    assert_eq!(bh0, &h0[..], "h0, n = {n}, width = {width}, slot {k}");
                    assert_eq!(bh1, &h1[..], "h1, n = {n}, width = {width}, slot {k}");
                    assert_eq!(br0, &r0[..], "rows0, n = {n}, width = {width}, slot {k}");
                    assert_eq!(br1, &r1[..], "rows1, n = {n}, width = {width}, slot {k}");
                }
            }
        }
    }
}
