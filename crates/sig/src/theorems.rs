//! Executable statements of the paper's theorems.
//!
//! Each function checks one theorem's conclusion on concrete inputs and
//! returns whether it holds. They serve three purposes: as machine-checked
//! documentation of Section III, as reusable oracles for the property-test
//! suite, and as worked examples for library users who want to convince
//! themselves of the invariances before trusting the classifier.

use crate::distance::{osdv, osdv0, osdv1};
use crate::influence::oiv;
use crate::sensitivity::{osv, osv0, osv1};
use facepoint_truth::{NpnTransform, TruthTable};

/// Theorem 1: PN-equivalent functions share the ordered influence vector.
///
/// Given any `f` and transform `t` (here `t` may include output negation —
/// influence is invariant under the full NPN group), checks
/// `OIV(f) == OIV(t(f))`.
pub fn theorem1_oiv_invariant(f: &TruthTable, t: &NpnTransform) -> bool {
    oiv(f) == oiv(&t.apply(f))
}

/// Theorem 2: PN-equivalent functions (no output negation) share `OSV`,
/// `OSV0` and `OSV1`.
///
/// # Panics
///
/// Panics if `t` negates the output — the theorem's hypothesis excludes
/// that case (see [`theorem3_balanced_swap`]).
pub fn theorem2_osv_invariant(f: &TruthTable, t: &NpnTransform) -> bool {
    assert!(
        !t.output_neg(),
        "Theorem 2 is about PN equivalence; strip the output negation"
    );
    let g = t.apply(f);
    osv(f) == osv(&g) && osv0(f) == osv0(&g) && osv1(f) == osv1(&g)
}

/// Theorem 3: for NPN-equivalent functions the pair `{OSV0, OSV1}` is
/// preserved — equal componentwise, or swapped when the transform negates
/// the output.
///
/// (Stated for balanced functions in the paper since unbalanced pairs can
/// be polarity-normalized first, but the set-equality holds universally.)
pub fn theorem3_balanced_swap(f: &TruthTable, t: &NpnTransform) -> bool {
    let g = t.apply(f);
    let (f0, f1) = (osv0(f), osv1(f));
    let (g0, g1) = (osv0(&g), osv1(&g));
    if t.output_neg() {
        f0 == g1 && f1 == g0
    } else {
        f0 == g0 && f1 == g1
    }
}

/// Theorem 4: the sensitivity-distance vectors obey the same law as the
/// sensitivity vectors: `OSDV` is PN-invariant, and the `{OSDV0, OSDV1}`
/// pair swaps exactly when the output is negated.
pub fn theorem4_osdv_invariant(f: &TruthTable, t: &NpnTransform) -> bool {
    let g = t.apply(f);
    if osdv(f) != osdv(&g) {
        return false;
    }
    let (f0, f1) = (osdv0(f), osdv1(f));
    let (g0, g1) = (osdv0(&g), osdv1(&g));
    if t.output_neg() {
        f0 == g1 && f1 == g0
    } else {
        f0 == g0 && f1 == g1
    }
}

/// The bridging identity between the point and point–face views:
/// `Σ_X sen(f, X) = 2 · Σ_i inf(f, i)` — both sides count the sensitive
/// (minterm, variable) incidences.
pub fn sensitivity_influence_identity(f: &TruthTable) -> bool {
    let total_sen = crate::sensitivity::SensitivityProfile::compute(f).total();
    total_sen == 2 * crate::influence::total_influence(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_theorems_on_random_samples() {
        let mut rng = StdRng::seed_from_u64(71);
        for n in 1..=6usize {
            for _ in 0..10 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let t = NpnTransform::random(n, &mut rng);
                assert!(theorem1_oiv_invariant(&f, &t));
                assert!(theorem3_balanced_swap(&f, &t));
                assert!(theorem4_osdv_invariant(&f, &t));
                assert!(sensitivity_influence_identity(&f));
                let pn = NpnTransform::new(t.perm().clone(), t.input_neg(), false);
                assert!(theorem2_osv_invariant(&f, &pn));
            }
        }
    }

    #[test]
    fn figure3_balanced_swap_witness() {
        // Fig. 3 exhibits NPN-equivalent balanced functions whose OSV0 and
        // OSV1 are exchanged. Any balanced f with OSV0 ≠ OSV1 and an
        // output-negating transform witnesses the swap.
        let mut rng = StdRng::seed_from_u64(73);
        let mut found = false;
        for _ in 0..200 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            if !f.is_balanced() || osv0(&f) == osv1(&f) {
                continue;
            }
            let t = NpnTransform::phase(4, 0, true); // pure output negation
            assert!(theorem3_balanced_swap(&f, &t));
            let g = t.apply(&f);
            assert_eq!(osv0(&f), osv1(&g));
            assert_eq!(osv1(&f), osv0(&g));
            found = true;
            break;
        }
        assert!(found, "a balanced function with asymmetric OSV exists");
    }

    #[test]
    #[should_panic(expected = "PN equivalence")]
    fn theorem2_rejects_output_negation() {
        let f = TruthTable::majority(3);
        let t = NpnTransform::phase(3, 0, true);
        theorem2_osv_invariant(&f, &t);
    }
}
