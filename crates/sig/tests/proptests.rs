//! Property-based tests of the signature machinery: the paper's
//! Theorems 1–4 as universally quantified invariants, plus internal
//! consistency between the fast and reference computation paths.

use facepoint_sig::{
    influence, msv, msv_reference, ocv, ocv1, ocv2, oiv, osdv_with, osv, osv0, osv1, osv_histogram,
    raw_msv, MintermFilter, OsdvEngine, SensitivityProfile, SigKernel, SignatureSet,
};
use facepoint_truth::{NpnTransform, Permutation, TruthTable};
use proptest::prelude::*;

fn arb_table(max_n: usize) -> impl Strategy<Value = TruthTable> {
    (0..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(any::<u64>(), facepoint_truth::words::word_count(n))
            .prop_map(move |words| TruthTable::from_words(n, &words).expect("sized vec"))
    })
}

/// Random **balanced** tables: a random table repaired to `|f| =
/// 2^{n-1}` by flipping excess bits (deterministically, walking from
/// minterm 0) — the adversarial workload for the polarity-derivation
/// path.
fn arb_balanced(max_n: usize) -> impl Strategy<Value = TruthTable> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(any::<u64>(), facepoint_truth::words::word_count(n)).prop_map(
            move |words| {
                let mut t = TruthTable::from_words(n, &words).expect("sized vec");
                let half = t.num_bits() / 2;
                let mut m = 0u64;
                while t.count_ones() > half {
                    if t.bit(m) {
                        t.set_bit(m, false);
                    }
                    m += 1;
                }
                while t.count_ones() < half {
                    if !t.bit(m) {
                        t.set_bit(m, true);
                    }
                    m += 1;
                }
                t
            },
        )
    })
}

/// Every subset of the seven signature families (2⁷ = 128 sets).
fn all_signature_subsets() -> Vec<SignatureSet> {
    let families = [
        SignatureSet::OCV1,
        SignatureSet::OCV2,
        SignatureSet::OIV,
        SignatureSet::OSV,
        SignatureSet::OSDV,
        SignatureSet::WALSH,
        SignatureSet::OCV3,
    ];
    (0u32..128)
        .map(|mask| {
            families
                .iter()
                .enumerate()
                .filter(|(i, _)| (mask >> i) & 1 == 1)
                .fold(SignatureSet::EMPTY, |acc, (_, &fam)| acc | fam)
        })
        .collect()
}

fn arb_pair(max_n: usize) -> impl Strategy<Value = (TruthTable, NpnTransform)> {
    (1..=max_n).prop_flat_map(|n| {
        let table = proptest::collection::vec(any::<u64>(), facepoint_truth::words::word_count(n))
            .prop_map(move |words| TruthTable::from_words(n, &words).expect("sized vec"));
        let tr = (any::<u64>(), any::<u16>(), any::<bool>()).prop_map(move |(s, neg, out)| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(s);
            NpnTransform::new(
                Permutation::random(n, &mut rng),
                neg & (((1u32 << n) - 1) as u16),
                out,
            )
        });
        (table, tr)
    })
}

proptest! {
    // ---- Theorem 1 ----
    #[test]
    fn oiv_is_npn_invariant((f, t) in arb_pair(7)) {
        prop_assert_eq!(oiv(&f), oiv(&t.apply(&f)));
    }

    // ---- Theorem 2 ----
    #[test]
    fn osv_triple_is_pn_invariant((f, t) in arb_pair(7)) {
        let pn = NpnTransform::new(t.perm().clone(), t.input_neg(), false);
        let g = pn.apply(&f);
        prop_assert_eq!(osv(&f), osv(&g));
        prop_assert_eq!(osv0(&f), osv0(&g));
        prop_assert_eq!(osv1(&f), osv1(&g));
    }

    // ---- Theorem 3 (generalized to all functions) ----
    #[test]
    fn osv_pair_swaps_exactly_on_output_negation((f, t) in arb_pair(7)) {
        let g = t.apply(&f);
        if t.output_neg() {
            prop_assert_eq!(osv0(&f), osv1(&g));
            prop_assert_eq!(osv1(&f), osv0(&g));
        } else {
            prop_assert_eq!(osv0(&f), osv0(&g));
            prop_assert_eq!(osv1(&f), osv1(&g));
        }
    }

    // ---- Theorem 4 ----
    #[test]
    fn osdv_family_obeys_theorem4((f, t) in arb_pair(6)) {
        let g = t.apply(&f);
        let all_f = osdv_with(&f, MintermFilter::All, OsdvEngine::Auto);
        let all_g = osdv_with(&g, MintermFilter::All, OsdvEngine::Auto);
        prop_assert_eq!(all_f, all_g);
        let f0 = osdv_with(&f, MintermFilter::Zeros, OsdvEngine::Auto);
        let f1 = osdv_with(&f, MintermFilter::Ones, OsdvEngine::Auto);
        let g0 = osdv_with(&g, MintermFilter::Zeros, OsdvEngine::Auto);
        let g1 = osdv_with(&g, MintermFilter::Ones, OsdvEngine::Auto);
        if t.output_neg() {
            prop_assert_eq!(f0, g1);
            prop_assert_eq!(f1, g0);
        } else {
            prop_assert_eq!(f0, g0);
            prop_assert_eq!(f1, g1);
        }
    }

    // ---- Cofactor vectors are NP-invariant at every arity ----
    #[test]
    fn ocv_is_np_invariant((f, t) in arb_pair(6)) {
        let pn = NpnTransform::new(t.perm().clone(), t.input_neg(), false);
        let g = pn.apply(&f);
        prop_assert_eq!(ocv1(&f), ocv1(&g));
        prop_assert_eq!(ocv2(&f), ocv2(&g));
        let l = 3.min(f.num_vars());
        prop_assert_eq!(ocv(&f, l), ocv(&g, l));
    }

    // ---- The MSV collides exactly on all theorem-backed content ----
    #[test]
    fn msv_is_npn_invariant((f, t) in arb_pair(7)) {
        prop_assert_eq!(
            msv(&f, SignatureSet::all()),
            msv(&t.apply(&f), SignatureSet::all())
        );
    }

    #[test]
    fn raw_msv_is_pn_invariant((f, t) in arb_pair(6)) {
        let pn = NpnTransform::new(t.perm().clone(), t.input_neg(), false);
        prop_assert_eq!(
            raw_msv(&f, SignatureSet::all()),
            raw_msv(&pn.apply(&f), SignatureSet::all())
        );
    }

    // ---- Internal consistency ----
    #[test]
    fn bit_sliced_profile_matches_naive(f in arb_table(8)) {
        prop_assert_eq!(
            SensitivityProfile::compute(&f),
            SensitivityProfile::compute_naive(&f)
        );
    }

    #[test]
    fn osdv_engines_agree(f in arb_table(7)) {
        for filter in [MintermFilter::All, MintermFilter::Zeros, MintermFilter::Ones] {
            prop_assert_eq!(
                osdv_with(&f, filter, OsdvEngine::Pairwise),
                osdv_with(&f, filter, OsdvEngine::Wht)
            );
        }
    }

    #[test]
    fn sensitivity_influence_sum_identity(f in arb_table(8)) {
        let total: u64 = osv_histogram(&f)
            .iter()
            .enumerate()
            .map(|(s, &c)| s as u64 * c)
            .sum();
        let inf_total: u64 = (0..f.num_vars()).map(|v| influence(&f, v) as u64).sum();
        prop_assert_eq!(total, 2 * inf_total);
    }

    #[test]
    fn influence_zero_iff_dead_variable(f in arb_table(7)) {
        for v in 0..f.num_vars() {
            prop_assert_eq!(influence(&f, v) == 0, !f.depends_on(v));
        }
    }

    #[test]
    fn osv_split_partitions_osv(f in arb_table(7)) {
        let mut merged = [osv0(&f), osv1(&f)].concat();
        merged.sort_unstable();
        prop_assert_eq!(merged, osv(&f));
    }

    #[test]
    fn osdv_row_sums_match_histogram(f in arb_table(6)) {
        let hist = osv_histogram(&f);
        let v = osdv_with(&f, MintermFilter::All, OsdvEngine::Auto);
        for (s, &count) in hist.iter().enumerate() {
            let pairs: u64 = if f.num_vars() == 0 { 0 } else {
                v.sigma(s as u32).iter().sum()
            };
            prop_assert_eq!(pairs, count * count.saturating_sub(1) / 2);
        }
    }

    // ---- Kernel ≡ reference differentials ----

    // Every SignatureSet subset on small arities: the kernel's canonical
    // MSV must be bit-identical to the two-pass reference (and to the
    // public `msv`, which routes through the kernel).
    #[test]
    fn kernel_equals_reference_for_every_subset(f in arb_table(5)) {
        let mut kernel = SigKernel::new();
        let mut buf = Vec::new();
        for set in all_signature_subsets() {
            kernel.msv_into(&f, set, &mut buf);
            let expect = msv_reference(&f, set);
            prop_assert_eq!(buf.as_slice(), expect.as_words(), "set = {}, f = {}", set, &f);
            prop_assert_eq!(&msv(&f, set), &expect, "msv(), set = {}, f = {}", set, &f);
        }
    }

    // Larger arities (up to the acceptance bound of 8) on the extended
    // set, which exercises every stage builder at once.
    #[test]
    fn kernel_equals_reference_extended_up_to_8(f in arb_table(8)) {
        let mut kernel = SigKernel::new();
        let set = SignatureSet::all_extended();
        prop_assert_eq!(kernel.msv(&f, set), msv_reference(&f, set), "f = {}", &f);
    }

    // The polarity-derivation path must be bit-identical to actually
    // negating the table and re-serializing it.
    #[test]
    fn kernel_derived_negation_equals_raw_msv(f in arb_table(7)) {
        let mut kernel = SigKernel::new();
        let mut buf = Vec::new();
        let set = SignatureSet::all_extended();
        kernel.raw_msv_into(&f, set, false, &mut buf);
        prop_assert_eq!(buf.as_slice(), raw_msv(&f, set).as_words(), "keep, f = {}", &f);
        kernel.raw_msv_into(&f, set, true, &mut buf);
        prop_assert_eq!(buf.as_slice(), raw_msv(&!&f, set).as_words(), "negate, f = {}", &f);
    }

    // Adversarially balanced tables: the satisfy count never resolves
    // the polarity, so every function runs the lockstep tie-break. The
    // kernel must agree with the reference and collide with ¬f.
    #[test]
    fn kernel_handles_adversarially_balanced_tables(f in arb_balanced(7)) {
        let mut kernel = SigKernel::new();
        for set in [SignatureSet::all(), SignatureSet::all_extended(), SignatureSet::OSV] {
            let got = kernel.msv(&f, set);
            prop_assert_eq!(&got, &msv_reference(&f, set), "set = {}, f = {}", set, &f);
            prop_assert_eq!(&got, &kernel.msv(&!&f, set), "¬f, set = {}, f = {}", set, &f);
        }
    }

    // ---- Spectral layer ----
    #[test]
    fn walsh_parseval(f in arb_table(7)) {
        let spec = facepoint_sig::spectral::walsh_spectrum(&f);
        let energy: i64 = spec.iter().map(|w| w * w).sum();
        let n2 = (f.num_bits() * f.num_bits()) as i64;
        prop_assert_eq!(energy, n2);
    }

    #[test]
    fn walsh_sorted_abs_is_npn_invariant((f, t) in arb_pair(6)) {
        prop_assert_eq!(
            facepoint_sig::spectral::walsh_spectrum_sorted_abs(&f),
            facepoint_sig::spectral::walsh_spectrum_sorted_abs(&t.apply(&f))
        );
    }

    // The in-place butterfly (scalar or four-lane, whichever the build
    // enables) against the naive O(4ⁿ) transform definition
    // W[s] = Σ_m (−1)^{popcount(s∧m)}·data[m].
    #[test]
    fn wht_in_place_matches_naive_transform(
        (n, seed) in (0usize..=8, any::<u64>())
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let len = 1usize << n;
        let data: Vec<i64> = (0..len)
            .map(|_| rng.random_range(0u64..=2000) as i64 - 1000)
            .collect();
        let naive: Vec<i64> = (0..len)
            .map(|s| {
                (0..len)
                    .map(|m| {
                        let sign = if (s & m).count_ones() % 2 == 0 { 1 } else { -1 };
                        sign * data[m]
                    })
                    .sum()
            })
            .collect();
        let mut fast = data;
        facepoint_sig::spectral::wht_in_place(&mut fast);
        prop_assert_eq!(fast, naive, "n = {}", n);
    }

    // ---- Bit-sliced batch lanes ----

    // The lane batch against per-function serialization: every subset
    // at small arity, the two full sets up to the acceptance bound of
    // 8. Random widths cross the single-function fallback (width 1)
    // and genuine multi-lane batches.
    #[test]
    fn batch_lanes_equal_scalar_for_every_subset(
        (n, width, seed) in (0usize..=6, 1usize..=8, any::<u64>())
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fns: Vec<TruthTable> = (0..width)
            .map(|_| TruthTable::random(n, &mut rng).unwrap())
            .collect();
        let mut kernel = SigKernel::new();
        for set in all_signature_subsets() {
            let batched = kernel.msv_batch(&fns, set);
            for (f, b) in fns.iter().zip(&batched) {
                prop_assert_eq!(b, &kernel.msv(f, set), "n = {}, set = {}, f = {}", n, set, f);
            }
        }
    }

    #[test]
    fn batch_lanes_equal_scalar_at_large_arity(
        (n, width, seed) in (7usize..=8, 2usize..=5, any::<u64>())
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fns: Vec<TruthTable> = (0..width)
            .map(|_| TruthTable::random(n, &mut rng).unwrap())
            .collect();
        let mut kernel = SigKernel::new();
        for set in [SignatureSet::all(), SignatureSet::all_extended()] {
            let batched = kernel.msv_batch(&fns, set);
            for (f, b) in fns.iter().zip(&batched) {
                prop_assert_eq!(b, &kernel.msv(f, set), "n = {}, set = {}, f = {}", n, set, f);
            }
        }
    }

    // ---- Auto engine on skewed sensitivity groups ----

    // Threshold and Hamming-ball functions (plus sparse noise) make
    // one polarity group of a sensitivity level huge and the other
    // tiny, so `OsdvEngine::Auto` picks *different* tails for the two
    // groups of the same level. Whatever it picks must agree with both
    // forced engines under every minterm filter.
    #[test]
    fn auto_engine_agrees_on_skewed_groups(
        (n, ball, cut, noise) in (1usize..=8, any::<bool>(), any::<u64>(), any::<u64>())
    ) {
        let bits = 1u64 << n;
        let f = if ball {
            // Hamming ball: true inside radius `t` around minterm 0.
            let t = (cut % (n as u64 + 1)) as u32;
            TruthTable::from_fn(n, |m| m.count_ones() <= t).unwrap()
        } else {
            // Threshold: true below a cutoff skewed toward the edges.
            let c = cut % (bits + 1);
            TruthTable::from_fn(n, |m| m < c).unwrap()
        };
        // Sparse noise: flip up to three minterms.
        let mut f = f;
        for k in 0..(noise % 4) {
            let m = (noise.rotate_right(16 * k as u32 + 7)) % bits;
            f.set_bit(m, !f.bit(m));
        }
        for filter in [MintermFilter::All, MintermFilter::Zeros, MintermFilter::Ones] {
            let auto = osdv_with(&f, filter, OsdvEngine::Auto);
            prop_assert_eq!(
                &auto,
                &osdv_with(&f, filter, OsdvEngine::Pairwise),
                "pairwise, filter = {:?}, f = {}", filter, &f
            );
            prop_assert_eq!(
                &auto,
                &osdv_with(&f, filter, OsdvEngine::Wht),
                "wht, filter = {:?}, f = {}", filter, &f
            );
        }
    }
}
