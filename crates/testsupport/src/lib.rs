//! Shared test-only harnesses.
//!
//! The workspace's three allocation proofs
//! (`crates/core/tests/zero_alloc.rs`, `crates/engine/tests/memory.rs`,
//! `crates/telemetry/tests/zero_alloc.rs`) used to each carry their own
//! copy of a counting `GlobalAlloc` wrapper; this crate is the single
//! copy. It counts **both** ways the proofs measure:
//!
//! * [`allocations()`] — heap allocation *events* (alloc, realloc,
//!   alloc_zeroed), for "this pass allocates nothing" windows;
//! * [`live_bytes()`] — bytes currently live (allocated minus freed),
//!   for "steady-state memory stays flat" windows.
//!
//! Each test crate still declares its own `#[global_allocator]` (the
//! attribute must live in the crate being instrumented):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: facepoint_testsupport::CountingAllocator =
//!     facepoint_testsupport::CountingAllocator;
//! ```
//!
//! Implementing `GlobalAlloc` is inherently unsafe, so this crate is
//! one of the two entries on the unsafe-audit allowlist in
//! `analysis.toml` (the other is the serve signal handler). It is a
//! dev-dependency only — nothing shipped links it.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Heap allocation events since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Heap bytes currently live (allocated minus deallocated).
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

/// The counting wrapper around [`System`]. Install it with
/// `#[global_allocator]` in the test crate.
pub struct CountingAllocator;

// SAFETY: every method delegates verbatim to `System`'s implementation
// — same layout, same pointer, same contract — and only additionally
// bumps two process-global atomic counters, which allocate nothing and
// cannot fail. The usual GlobalAlloc obligations (layout validity,
// pointer provenance) are discharged by `System` itself.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates to `System.alloc` with the caller's layout;
    // the counters are only touched on success.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: delegates to `System.dealloc` with the caller's pointer
    // and layout unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to `System.realloc`; on success the live-byte
    // delta is the size difference, and the event counter bumps once.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: delegates to `System.alloc_zeroed` with the caller's
    // layout; the counters are only touched on success.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }
}

/// Heap allocation events since process start. Only meaningful when
/// [`CountingAllocator`] is installed as the global allocator.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Heap bytes currently live. Only meaningful when
/// [`CountingAllocator`] is installed as the global allocator.
pub fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Runs `pass` up to five times and requires at least one execution
/// with zero allocation events in its window. The counter is
/// process-global, and the libtest harness's *main* thread
/// occasionally allocates while the test thread is mid-window (it did
/// so reliably enough on single-core runners to flake the core test) —
/// such foreign noise can only ever *add* counts, so one clean pass
/// proves the measured code allocation-free, while code that really
/// allocates fails all five passes deterministically.
pub fn assert_some_pass_allocates_nothing(what: std::fmt::Arguments<'_>, mut pass: impl FnMut()) {
    let mut deltas = Vec::new();
    for _ in 0..5 {
        let before = allocations();
        pass();
        let delta = allocations() - before;
        if delta == 0 {
            return;
        }
        deltas.push(delta);
    }
    panic!("{what}: every steady-state pass allocated ({deltas:?})");
}
