//! # facepoint
//!
//! NPN classification of Boolean functions from face and point
//! characteristics — a Rust reproduction of the DATE 2023 paper
//! *"Rethinking NPN Classification from Face and Point Characteristics of
//! Boolean Functions"* (arXiv:2301.12122).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`truth`] — packed truth tables and the NPN transform group,
//! * [`sig`] — cofactor / influence / sensitivity signature vectors and
//!   the Mixed Signature Vector (MSV),
//! * [`core`] — the signature-hash NPN classifier (Algorithm 1),
//! * [`exact`] — exact canonicalization, exact classification, and the
//!   baseline classifiers from the paper's Table III,
//! * [`aig`] — and-inverter graphs, cut enumeration and the synthetic
//!   EPFL-style benchmark suite,
//! * [`engine`] — the sharded, parallel, streaming classification
//!   engine for throughput-oriented workloads,
//! * [`serve`] — the TCP service front-end and its protocol client
//!   (wire spec in `docs/PROTOCOL.md`).
//!
//! The most common entry points are lifted to the crate root.
//!
//! # Quick start
//!
//! ```
//! use facepoint::{Classifier, SignatureSet, TruthTable};
//!
//! // Three functions, two NPN classes: majority, a transform of majority,
//! // and a projection.
//! let fns = vec![
//!     TruthTable::majority(3),
//!     TruthTable::from_hex(3, "d4")?, // maj with x0 negated
//!     TruthTable::projection(3, 0)?,
//! ];
//! let result = Classifier::new(SignatureSet::all()).classify(fns);
//! assert_eq!(result.num_classes(), 2);
//! # Ok::<(), facepoint::truth::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use facepoint_aig as aig;
pub use facepoint_core as core;
pub use facepoint_engine as engine;
pub use facepoint_exact as exact;
pub use facepoint_serve as serve;
pub use facepoint_sig as sig;
pub use facepoint_truth as truth;

pub use facepoint_core::{signature_key, Classification, Classifier};
pub use facepoint_engine::{
    certified_key, CanonAnswer, CanonHandle, Engine, EngineConfig, EngineReport, EngineStats,
    Resolution,
};
pub use facepoint_sig::{msv, Msv, SignatureSet};
pub use facepoint_truth::{NpnTransform, Permutation, TruthTable};
