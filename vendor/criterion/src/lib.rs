//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the macro and type surface the facepoint benches use
//! ([`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`Throughput`], [`criterion_group!`], [`criterion_main!`]) on top of
//! a simple median-of-samples wall-clock timer.
//!
//! Reported numbers are honest medians but lack criterion's outlier
//! analysis, regression tracking and HTML reports. Each benchmark
//! prints one line:
//!
//! ```text
//! classifier_sets/set/OIV   time: 1.234 ms/iter   thrpt: 1.62 Melem/s
//! ```
//!
//! Passing `--test` (as `cargo test --benches` does) runs every
//! closure exactly once, so benches double as smoke tests.
//!
//! [`criterion_group!`]: macro@crate::criterion_group
//! [`criterion_main!`]: macro@crate::criterion_main

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Workload size declared for a benchmark, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter display.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is only a parameter display.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher<'a> {
    samples: Vec<Duration>,
    cfg: &'a RunConfig,
}

impl Bencher<'_> {
    /// Times `routine`, collecting `sample_size` samples (or running it
    /// once in `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.cfg.test_mode {
            let _ = routine();
            return;
        }
        // Warm-up: run until the warm-up budget elapses at least once.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || warm_iters == 0 {
            let _ = std::hint::black_box(routine());
            warm_iters += 1;
        }
        // Size each sample so total measurement stays near the budget.
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let budget_per_sample = self.cfg.measurement_time / self.cfg.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            16
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                let _ = std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

#[derive(Debug, Clone)]
struct RunConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl RunConfig {
    fn median(samples: &mut [Duration]) -> Duration {
        if samples.is_empty() {
            return Duration::ZERO;
        }
        samples.sort_unstable();
        samples[samples.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: RunConfig,
    throughput: Option<Throughput>,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            cfg: &self.cfg,
        };
        f(&mut b);
        let mut samples = b.samples;
        let median = RunConfig::median(&mut samples);
        report(
            &format!("{}/{id}", self.name),
            median,
            self.throughput,
            self.cfg.test_mode,
        );
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (upstream writes reports here; we already
    /// printed per-benchmark lines).
    pub fn finish(&mut self) {}
}

fn report(id: &str, median: Duration, throughput: Option<Throughput>, test_mode: bool) {
    if test_mode {
        println!("{id:<48} ok (test mode)");
        return;
    }
    let time = if median.as_secs_f64() >= 1.0 {
        format!("{:.3} s/iter", median.as_secs_f64())
    } else if median.as_micros() >= 1000 {
        format!("{:.3} ms/iter", median.as_secs_f64() * 1e3)
    } else {
        format!("{:.3} µs/iter", median.as_secs_f64() * 1e6)
    };
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) if !median.is_zero() => {
            let per_sec = n as f64 / median.as_secs_f64();
            if per_sec >= 1e6 {
                format!("   thrpt: {:.2} Melem/s", per_sec / 1e6)
            } else {
                format!("   thrpt: {:.1} Kelem/s", per_sec / 1e3)
            }
        }
        Some(Throughput::Bytes(n)) if !median.is_zero() => {
            format!(
                "   thrpt: {:.2} MiB/s",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{id:<48} time: {time}{thrpt}");
}

/// The benchmark harness: create groups, run benches, print a line per
/// benchmark.
pub struct Criterion {
    cfg: RunConfig,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test");
        Criterion {
            cfg: RunConfig {
                sample_size: 10,
                warm_up_time: Duration::from_millis(300),
                measurement_time: Duration::from_secs(1),
                test_mode,
            },
        }
    }
}

impl Criterion {
    /// Sets the default sample count per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Sets the default warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Sets the default measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Parses command-line arguments (accepted for API compatibility;
    /// only `--test` changes behavior, matching `cargo test --benches`).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.cfg.clone(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone())
            .bench_function("bench", f);
        self
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// configuration — same surface as upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
