//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the minimal, API-compatible subset of `rand` that the
//! facepoint workspace uses:
//!
//! * [`Rng`] — the core source of random `u64` words;
//! * [`RngExt`] — `random::<T>()` and `random_range(..)` conveniences;
//! * [`SeedableRng`] with [`rngs::StdRng`] — a deterministic,
//!   seedable generator (xoshiro256** seeded via SplitMix64).
//!
//! The statistical quality is more than sufficient for workload
//! generation and property tests; the sequences differ from upstream
//! `rand`, which only matters to code that hard-codes expected draws
//! (facepoint does not).

#![forbid(unsafe_code)]

/// A source of uniformly distributed random 64-bit words.
///
/// Object-safe; generic helpers live on [`RngExt`].
pub trait Rng {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draws a uniform sample.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: the low bits of some generators are weaker.
        rng.next_u64() >> 63 != 0
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (unbiased).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject draws from the final partial copy of [0, bound).
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniform sample of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with
    /// SplitMix64 seed expansion.
    ///
    /// (Upstream `rand`'s `StdRng` is ChaCha-based; this stand-in keeps
    /// the same interface and determinism guarantees without the
    /// dependency. Sequences differ from upstream.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
