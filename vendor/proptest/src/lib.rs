//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements the subset of proptest that the facepoint test
//! suites use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map` / `prop_flat_map`, [`any`](arbitrary::any),
//! [`Just`](strategy::Just), range and tuple strategies,
//! [`collection::vec()`], the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros and
//! [`ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its case index and the
//!   deterministic seed, which is enough to reproduce it (every run uses
//!   the same sequence);
//! * string strategies support only the `.{a,b}` pattern facepoint uses;
//! * `prop_assert*` panics directly instead of routing a `TestCaseError`.
//!
//! [`proptest!`]: macro@crate::proptest
//! [`ProptestConfig`]: test_runner::ProptestConfig

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A recipe for generating test values.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy simply draws a value from a deterministic RNG.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `f` (rejection sampling, capped).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-typed strategies — the engine behind
    /// [`prop_oneof!`](crate::prop_oneof).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Creates a union over `options` (must be non-empty).
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Minimal regex-string strategy: supports exactly the `.{a,b}`
    /// pattern (a string of `a..=b` arbitrary characters). Upstream
    /// proptest accepts full regexes; extend here as tests need.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let (min, max) = parse_dot_repeat(self).unwrap_or_else(|| {
                panic!(
                    "vendored proptest only supports \".{{a,b}}\" string \
                     patterns, got {self:?}"
                )
            });
            let len = rng.random_range(min..=max);
            // A parser-hostile alphabet: printable ASCII, whitespace and
            // a couple of multi-byte characters.
            const ALPHABET: &[char] = &[
                'a', 'g', '0', '1', '9', ' ', '\t', '\n', '-', '+', 'x', '~', 'é', '✓',
            ];
            (0..len)
                .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())])
                .collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (a, b) = rest.split_once(',')?;
        Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
    }

    /// Yields uniform samples of `T` — returned by [`any`](crate::arbitrary::any).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    impl<T: rand::Random> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random::<T>()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::Any;

    /// A strategy producing uniform samples of `T`.
    pub fn any<T: rand::Random>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Sizes accepted by [`vec()`]: an exact `usize` or a
    /// `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`, with a length
    /// in `size` (a `usize` for an exact length, or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-loop configuration and the deterministic case runner.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases each property runs, among other knobs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases — smaller than upstream's 256 to keep offline CI
        /// fast; raise per-block with `proptest_config` when needed.
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test RNG: seeded from the test's name so every
    /// run (and every machine) sees the same case sequence.
    pub fn deterministic_rng(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Uniform choice between strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// Declares property tests: each `fn` runs its body over `cases`
/// generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = ($config:expr);
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $( $pat:pat in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::deterministic_rng(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let ( $($pat,)+ ) = (
                        $( $crate::strategy::Strategy::generate(&($strategy), &mut rng), )+
                    );
                    let run = || -> () { $body };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {case}/{} of {} failed (deterministic seed; \
                             rerun reproduces it)",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
